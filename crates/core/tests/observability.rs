//! Observability-layer guarantees at the tree level: observation never
//! perturbs the computation (the zero-overhead pin), the lazy-lag gauges
//! surface in the sampled series, and the seeded relay-suppression fault
//! trips the `backlog_growth` watchdog on exactly the suppressed processor.

mod common;

use common::to_client;
use dbtree::{BuildSpec, ClientOp, DbCluster, PiggybackCfg, ProtocolKind, TreeConfig};
use simnet::{HealthConfig, SimConfig};
use workload::{KeyDist, Mix, WorkloadGen};

const N_PROCS: u32 = 4;
const SEED: u64 = 4242;

fn tree_cfg(suppress: Option<u32>) -> TreeConfig {
    TreeConfig {
        piggyback: Some(PiggybackCfg::default()),
        relay_suppress_proc: suppress,
        ..TreeConfig::fixed_copies(ProtocolKind::SemiSync, 3)
    }
}

/// Run one fixed workload and return `(event digest, completion digest,
/// cluster)`. The event digest is the simulator's externally visible
/// footprint; the completion digest is every op's timing and outcome.
fn run(sim_cfg: SimConfig, suppress: Option<u32>) -> (u64, u64, u64, Vec<String>, DbCluster) {
    let spec = BuildSpec::new(
        (0..120).map(|k| k * 10).collect(),
        N_PROCS,
        tree_cfg(suppress),
    );
    let mut cluster = DbCluster::build(&spec, sim_cfg);
    let mut gen = WorkloadGen::new(
        KeyDist::Uniform { n: 2000 },
        Mix {
            search_fraction: 0.3,
            delete_fraction: 0.1,
            scan_fraction: 0.0,
        },
        N_PROCS,
        SEED,
    );
    let ops: Vec<ClientOp> = gen.batch(400).iter().map(to_client).collect();
    let stats = cluster.run_closed_loop(&ops, 6);
    let completions: Vec<String> = stats
        .records
        .iter()
        .map(|r| {
            format!(
                "{}@{}..{}:{:?}",
                r.id,
                r.submitted.ticks(),
                r.completed.ticks(),
                r.outcome
            )
        })
        .collect();
    (
        cluster.sim.stats().total_messages(),
        cluster.sim.now().ticks(),
        cluster.sim.events_delivered(),
        completions,
        cluster,
    )
}

/// The zero-overhead pin: a run with the full observability stack on —
/// tracing, sampling, gauges, health watchdogs — is event-for-event and
/// completion-for-completion identical to the same seed with `ObsConfig`
/// fully disabled. Observation draws no RNG and schedules no events.
#[test]
fn enabled_observability_is_byte_identical_to_disabled() {
    let disabled = SimConfig::jittery(SEED, 2, 25);
    assert_eq!(disabled.trace_capacity, 0);
    assert_eq!(disabled.sample_interval, 0);
    assert!(!disabled.health.enabled);
    let enabled = SimConfig {
        trace_capacity: 1 << 14,
        sample_interval: 100,
        health: HealthConfig::watchdogs(),
        ..SimConfig::jittery(SEED, 2, 25)
    };

    let (msgs_a, now_a, events_a, completions_a, mut off) = run(disabled, None);
    let (msgs_b, now_b, events_b, completions_b, mut on) = run(enabled, None);
    assert_eq!(msgs_a, msgs_b, "message counts diverge");
    assert_eq!(now_a, now_b, "virtual clocks diverge");
    assert_eq!(events_a, events_b, "delivered event counts diverge");
    assert_eq!(completions_a, completions_b, "op outcomes/timings diverge");

    // The disabled side observed nothing at all...
    let obs_off = off.take_obs();
    assert!(obs_off.trace.is_empty());
    assert!(obs_off.series.is_empty());
    assert!(obs_off.alerts.is_empty());
    // ...while the enabled side genuinely observed the same run.
    let obs_on = on.take_obs();
    assert!(!obs_on.trace.is_empty());
    assert!(!obs_on.series.is_empty());
    assert!(obs_on.alerts.is_empty(), "healthy run must not alert");
}

/// Every documented lazy-lag gauge shows up in the sampled series, and the
/// simulator appends its own event-queue depth gauge to each sample.
#[test]
fn lazy_lag_gauges_surface_in_the_series() {
    let cfg = SimConfig {
        sample_interval: 100,
        ..SimConfig::jittery(SEED, 2, 25)
    };
    let (_, _, _, _, mut cluster) = run(cfg, None);
    let obs = cluster.take_obs();
    assert!(!obs.series.is_empty());
    for name in [
        "proc.merge_pending",
        "proc.parked_dwell",
        "proc.parked_writes",
        "relay.backlog_age",
        "relay.backlog_depth",
        "relay.deferred_depth",
        "store.staleness_max",
        "rt.event_queue_depth",
    ] {
        assert!(
            obs.series
                .iter()
                .any(|s| s.gauges.iter().any(|(n, _)| *n == name)),
            "gauge {name} never sampled"
        );
    }
    // Relays flowed, so at least one sample caught a non-empty backlog and
    // at least one copy carries a staleness stamp.
    let nonzero = |name: &str| {
        obs.series
            .iter()
            .flat_map(|s| s.gauges.iter())
            .any(|(n, v)| *n == name && *v > 0)
    };
    assert!(nonzero("relay.backlog_depth"), "backlog never observed");
    assert!(nonzero("store.staleness_max"), "staleness never stamped");
}

/// The seeded E21 fault: suppressing relay batches on one processor makes
/// its backlog depth/age grow until `backlog_growth` fires — on that
/// processor and no other, with no other rule involved.
#[test]
fn relay_suppression_trips_the_backlog_watchdog_on_the_right_proc() {
    const VICTIM: u32 = 2;
    let cfg = SimConfig {
        sample_interval: 100,
        health: HealthConfig::watchdogs(),
        ..SimConfig::jittery(SEED, 2, 25)
    };
    let (_, _, _, _, mut cluster) = run(cfg, Some(VICTIM));
    let obs = cluster.take_obs();
    assert!(
        !obs.alerts.is_empty(),
        "suppressed backlog never tripped the watchdog"
    );
    for a in &obs.alerts {
        assert_eq!(a.rule, "backlog_growth");
        assert_eq!(a.proc.0, VICTIM, "alert named the wrong processor: {a:?}");
    }
    let report = obs.health_report();
    assert!(!report.healthy());
    assert_eq!(
        report.by_rule.get("backlog_growth"),
        Some(&(obs.alerts.len() as u64))
    );
}
