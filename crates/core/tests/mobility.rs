//! §4.2 (single-copy mobile nodes) and §4.3 (variable copies) end-to-end
//! tests: migrations racing client operations, misnavigation recovery with
//! and without forwarding addresses, and join/unjoin membership.

mod common;

use std::collections::BTreeSet;

use common::{assert_clean, to_client};
use dbtree::{checker, BuildSpec, ClientOp, DbCluster, Intent, Placement, TreeConfig};
use simnet::{ProcId, SimConfig};
use workload::{KeyDist, Mix, WorkloadGen};

fn mobile_cfg(forwarding: bool) -> TreeConfig {
    TreeConfig {
        placement: Placement::Uniform { copies: 1 },
        forwarding,
        ..Default::default()
    }
}

/// Run inserts interleaved with leaf migrations; return cluster + expected.
fn run_with_migrations(
    cfg: TreeConfig,
    seed: u64,
    n_ops: usize,
    migrate_every: usize,
) -> (DbCluster, BTreeSet<u64>) {
    let preload: Vec<u64> = (0..200).map(|k| k * 10).collect();
    let n_procs = 4;
    let spec = BuildSpec::new(preload.clone(), n_procs, cfg);
    let mut cluster = DbCluster::build(&spec, SimConfig::jittery(seed, 2, 25));

    let mut gen = WorkloadGen::new(
        KeyDist::Uniform { n: 2000 },
        Mix {
            search_fraction: 0.3,
            ..Mix::INSERT_ONLY
        },
        n_procs,
        seed,
    );
    let mut expected: BTreeSet<u64> = preload.into_iter().collect();
    let ops = gen.batch(n_ops);
    for (i, op) in ops.iter().enumerate() {
        cluster.submit(to_client(op));
        if let workload::OpKind::Insert = op.kind {
            expected.insert(op.key);
        }
        if i % migrate_every == migrate_every - 1 {
            // Move some leaf to the next processor over, while traffic is in
            // flight. The set can be transiently empty when every leaf is
            // itself mid-migration (removed at the source, install in
            // flight) — skip this round rather than divide by zero.
            let leaves = cluster.leaves();
            if let Some(&(leaf, owner)) = leaves.get(i % leaves.len().max(1)) {
                let dest = ProcId((owner.0 + 1) % cluster.n_procs());
                cluster.migrate(leaf, owner, dest);
            }
        }
        // Let the network make progress between submissions.
        if i % 8 == 7 {
            for _ in 0..30 {
                if !cluster.sim.step() {
                    break;
                }
            }
        }
    }
    cluster.run_to_quiescence();
    (cluster, expected)
}

// ---------------------------------------------------------------------------
// §4.2 — single-copy mobile nodes
// ---------------------------------------------------------------------------

#[test]
fn migrations_during_traffic_lose_nothing_without_forwarding() {
    for seed in 0..4 {
        let (mut cluster, expected) = run_with_migrations(mobile_cfg(false), seed, 300, 10);
        assert_clean(&mut cluster, &expected);
        let moves: u64 = cluster
            .sim
            .procs()
            .map(|(_, p)| p.metrics.migrations_in)
            .sum();
        assert!(moves > 0, "migrations actually happened (seed {seed})");
    }
}

#[test]
fn migrations_during_traffic_lose_nothing_with_forwarding() {
    for seed in 0..4 {
        let (mut cluster, expected) = run_with_migrations(mobile_cfg(true), seed, 300, 10);
        assert_clean(&mut cluster, &expected);
    }
}

#[test]
fn forwarding_addresses_reduce_recovery_cost() {
    let run = |forwarding: bool| {
        let (cluster, _) = run_with_migrations(mobile_cfg(forwarding), 99, 400, 5);
        let recoveries: u64 = cluster
            .sim
            .procs()
            .map(|(_, p)| p.metrics.missing_node_recoveries)
            .sum();
        let followed: u64 = cluster
            .sim
            .procs()
            .map(|(_, p)| p.metrics.forwards_followed)
            .sum();
        (recoveries, followed)
    };
    let (rec_without, fol_without) = run(false);
    let (rec_with, fol_with) = run(true);
    assert_eq!(fol_without, 0, "no forwarding addresses to follow");
    // With forwarding on, some messages take the shortcut.
    assert!(
        fol_with > 0 || rec_with <= rec_without,
        "forwarding helps: followed {fol_with}, recoveries {rec_with} vs {rec_without}"
    );
}

#[test]
fn forwarding_addresses_garbage_collect() {
    let cfg = TreeConfig {
        forwarding_ttl: 50,
        ..mobile_cfg(true)
    };
    let (mut cluster, expected) = run_with_migrations(cfg, 5, 200, 10);
    assert_clean(&mut cluster, &expected);
    // After quiescence + TTL, a fresh migration's GC timer has fired for old
    // entries; at minimum the table is bounded by migrations.
    let total_forwards: usize = cluster
        .sim
        .procs()
        .map(|(_, p)| p.store.forward_count())
        .sum();
    let total_migrations: u64 = cluster
        .sim
        .procs()
        .map(|(_, p)| p.metrics.migrations_out)
        .sum();
    assert!(
        (total_forwards as u64) < total_migrations,
        "GC collected some of {total_migrations} forwarding addresses ({total_forwards} left)"
    );
}

#[test]
fn migration_is_a_noop_to_self_or_unknown_nodes() {
    let spec = BuildSpec::new((0..50).map(|k| k * 2).collect(), 2, mobile_cfg(false));
    let mut cluster = DbCluster::build(&spec, SimConfig::seeded(1));
    let leaves = cluster.leaves();
    let (leaf, owner) = leaves[0];
    // Self-migration: ignored.
    cluster.migrate(leaf, owner, owner);
    // Migration command to the wrong owner: ignored.
    let not_owner = ProcId(1 - owner.0);
    cluster.migrate(leaf, not_owner, owner);
    cluster.run_to_quiescence();
    let expected: BTreeSet<u64> = (0..50).map(|k| k * 2).collect();
    assert_clean(&mut cluster, &expected);
}

// ---------------------------------------------------------------------------
// §4.3 — variable copies
// ---------------------------------------------------------------------------

fn variable_cfg() -> TreeConfig {
    TreeConfig {
        placement: Placement::PathReplication,
        variable_copies: true,
        ..Default::default()
    }
}

#[test]
fn leaf_migration_joins_the_path() {
    // Build with all leaves on procs 0..3, then move one leaf to a processor
    // and verify the dB-tree property: the destination joins every interior
    // node on the leaf's path.
    let (mut cluster, expected) = run_with_migrations(variable_cfg(), 3, 200, 8);
    assert_clean(&mut cluster, &expected);
    let joins: u64 = cluster.sim.procs().map(|(_, p)| p.metrics.joins).sum();
    assert!(joins > 0, "at least one join happened");
    let violations = checker::check_path_property(&cluster.sim);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn variable_copies_many_seeds_clean() {
    for seed in 0..4 {
        let (mut cluster, expected) = run_with_migrations(variable_cfg(), seed, 250, 12);
        assert_clean(&mut cluster, &expected);
        let violations = checker::check_path_property(&cluster.sim);
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
    }
}

#[test]
fn unjoin_happens_when_a_processor_loses_its_last_leaf_under_a_parent() {
    // Concentrated migrations away from processor 0 should eventually make
    // it unjoin some interior replication.
    let preload: Vec<u64> = (0..300).map(|k| k * 5).collect();
    let spec = BuildSpec::new(preload.clone(), 4, variable_cfg());
    let mut cluster = DbCluster::build(&spec, SimConfig::jittery(17, 2, 20));
    // Phase 1: move every leaf owned by P0 to P1 — P1 *joins* the interior
    // replications above them (the PC, P0, never leaves per the paper).
    let leaves = cluster.leaves();
    for (leaf, owner) in &leaves {
        if *owner == ProcId(0) {
            cluster.migrate(*leaf, *owner, ProcId(1));
        }
    }
    cluster.run_to_quiescence();
    // Phase 2: move the same leaves onward to P2 — P1, a non-PC member, has
    // now lost its last child under those parents and must unjoin.
    for (leaf, owner) in &leaves {
        if *owner == ProcId(0) {
            cluster.migrate(*leaf, ProcId(1), ProcId(2));
        }
    }
    cluster.run_to_quiescence();
    let unjoins: u64 = cluster.sim.procs().map(|(_, p)| p.metrics.unjoins).sum();
    assert!(unjoins > 0, "P1 left some interior replications");
    let expected: BTreeSet<u64> = preload.into_iter().collect();
    assert_clean(&mut cluster, &expected);
    // P0 still serves searches (the root stays everywhere).
    cluster.submit(ClientOp {
        origin: ProcId(0),
        key: 25,
        intent: Intent::Search,
    });
    let records = cluster.run_to_quiescence();
    assert_eq!(records[0].outcome.found, Some(25));
}

// ---------------------------------------------------------------------------
// Fig 6 — the join/insert race
// ---------------------------------------------------------------------------

#[test]
fn join_version_relay_fixes_the_fig6_race() {
    // With the version relay ON (the paper's algorithm), concurrent joins
    // and inserts leave complete histories. With it OFF, at least one seed
    // exhibits an incomplete-history violation at a late joiner.
    let run = |join_version_relay: bool, seed: u64| {
        let cfg = TreeConfig {
            join_version_relay,
            ..variable_cfg()
        };
        let (mut cluster, expected) = run_with_migrations(cfg, seed, 300, 4);
        cluster.record_final_digests();
        let history_violations = cluster.log().lock().check().len();
        let lost = checker::check_keys(&cluster.sim, &expected).len();
        (history_violations, lost)
    };
    let mut broken_total = 0;
    for seed in 0..6 {
        let (h, lost) = run(true, seed);
        assert_eq!((h, lost), (0, 0), "paper algorithm clean (seed {seed})");
        let (h, lost) = run(false, seed);
        broken_total += h + lost;
    }
    assert!(
        broken_total > 0,
        "disabling the version relay reproduces the Fig 6 failure"
    );
}
