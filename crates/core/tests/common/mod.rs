#![allow(dead_code)]

//! Shared harness for the protocol integration tests.

use std::collections::BTreeSet;

use dbtree::{checker, BuildSpec, ClientOp, DbCluster, Intent, Key, TreeConfig};
use simnet::{ProcId, SimConfig};
use workload::{KeyDist, Mix, Op, OpKind, WorkloadGen};

/// Convert a workload op to a driver op.
pub fn to_client(op: &Op) -> ClientOp {
    ClientOp {
        origin: ProcId(op.origin),
        key: op.key,
        intent: match op.kind {
            OpKind::Search => Intent::Search,
            OpKind::Insert => Intent::Insert(op.value),
            OpKind::Delete => Intent::Delete,
            OpKind::Scan => unreachable!("these tests drive point-op mixes"),
        },
    }
}

/// Run `n_ops` operations against a fresh cluster; return the cluster and
/// the set of keys that must be findable afterwards (preloaded + inserted).
pub fn run_workload(
    cfg: TreeConfig,
    n_procs: u32,
    preload: u64,
    n_ops: usize,
    mix: Mix,
    seed: u64,
) -> (DbCluster, BTreeSet<Key>) {
    let preload_keys: Vec<Key> = (0..preload).map(|k| k * 10).collect();
    let spec = BuildSpec::new(preload_keys.clone(), n_procs, cfg);
    let mut cluster = DbCluster::build(&spec, SimConfig::jittery(seed, 2, 25));

    let mut gen = WorkloadGen::new(
        KeyDist::Uniform {
            n: (preload * 10).max(1000),
        },
        mix,
        n_procs,
        seed ^ 0xABCD,
    );
    let ops: Vec<ClientOp> = gen.batch(n_ops).iter().map(to_client).collect();
    let stats = cluster.run_closed_loop(&ops, 4);
    assert_eq!(stats.records.len(), n_ops, "every op completes");

    let mut expected: BTreeSet<Key> = preload_keys.into_iter().collect();
    for r in &stats.records {
        if let Intent::Insert(_) = r.op.intent {
            expected.insert(r.op.key);
        }
    }
    (cluster, expected)
}

/// Assert a run satisfied every global + history requirement.
pub fn assert_clean(cluster: &mut DbCluster, expected: &BTreeSet<Key>) {
    let violations = checker::check_all(cluster, expected);
    assert!(
        violations.is_empty(),
        "violations:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
