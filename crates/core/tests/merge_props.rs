//! Property tests for the anti-entropy state merge
//! ([`NodeCopy::merge_from`]): the recovery layer may deliver snapshots
//! duplicated, reordered, or crossed with one another and with ordinary
//! relayed updates, so the merge must be a join-semilattice on copy state —
//! **commutative**, **associative**, and **idempotent** — and a merge must
//! subsume any prefix/subset of the update stream it summarizes
//! (op-replay and state-merge land every copy on the same digest).

use dbtree::{ChildRef, Entry, Key, KeyRange, Link, NodeCopy, NodeId};
use proptest::prelude::*;
use simnet::ProcId;

/// The node identity every generated copy shares (the merge is only
/// defined between copies of the same logical node).
const NODE: NodeId = NodeId(7);

/// Everything [`NodeCopy::merge_from`] claims to join, order-normalized:
/// membership is position-insensitive on the wire (each member's join
/// version is what matters), so it canonicalizes to a sorted map.
type Canon = (
    KeyRange,
    u64,
    Vec<(Key, Entry)>,
    [(Option<Link>, u64); 3],
    ProcId,
    Vec<(ProcId, u64)>,
);

fn canon(c: &NodeCopy) -> Canon {
    let mut members: Vec<(ProcId, u64)> = c
        .copies
        .iter()
        .copied()
        .zip(c.join_versions.iter().copied())
        .collect();
    members.sort_unstable_by_key(|(p, _)| *p);
    (
        c.range,
        c.version,
        c.entries.iter().map(|(k, e)| (*k, *e)).collect(),
        [
            (c.right, c.right_link_version),
            (c.left, c.left_link_version),
            (c.parent, c.parent_link_version),
        ],
        c.pc,
        members,
    )
}

fn merged(a: &NodeCopy, b: &NodeCopy) -> NodeCopy {
    let mut out = a.clone();
    out.merge_from(&b.snapshot());
    out
}

fn arb_entry() -> impl Strategy<Value = Entry> {
    prop_oneof![
        (0u64..1_000, 1u64..40).prop_map(|(value, stamp)| Entry::Val { value, stamp }),
        (1u64..40).prop_map(|stamp| Entry::Tomb { stamp }),
        (0u64..12, 0u32..4, 0u64..15).prop_map(|(node, home, version)| Entry::Child(ChildRef {
            node: NodeId(node),
            home: ProcId(home),
            version,
        })),
    ]
}

fn arb_link() -> impl Strategy<Value = Option<Link>> {
    prop_oneof![
        Just(None::<Link>),
        (1u64..12, 0u32..4).prop_map(|(node, home)| Some(Link::new(NodeId(node), ProcId(home)))),
    ]
}

/// An arbitrary copy of `NODE`: a range narrowed to some high bound (splits
/// only ever shrink the high side), entries inside it, arbitrary version,
/// links (each with its change version), PC, and membership.
fn arb_copy() -> impl Strategy<Value = NodeCopy> {
    (
        (
            prop_oneof![Just(None::<u64>), (10u64..120).prop_map(Some)],
            proptest::collection::vec((0u64..120, arb_entry()), 0..12),
            0u64..15,
            arb_link(),
        ),
        (
            arb_link(),
            arb_link(),
            0u32..4,
            proptest::collection::vec((0u32..6, 0u64..15), 1..5),
        ),
        (0u64..6, 0u64..6, 0u64..6),
    )
        .prop_map(
            |((high, entries, version, right), (left, parent, pc, members), (rlv, llv, plv))| {
                let range = KeyRange::new(0, high);
                let mut c = NodeCopy::new(NODE, 0, range, ProcId(pc));
                c.entries = entries
                    .into_iter()
                    .filter(|(k, _)| range.contains(*k))
                    .collect();
                c.version = version;
                c.right = right;
                c.left = left;
                c.parent = parent;
                c.right_link_version = rlv;
                c.left_link_version = llv;
                c.parent_link_version = plv;
                // Dedup members (later join version wins) via a sorted map, the
                // same shape `canon` reduces to.
                let members: std::collections::BTreeMap<u32, u64> = members.into_iter().collect();
                c.copies = members.keys().map(|&p| ProcId(p)).collect();
                c.join_versions = members.values().copied().collect();
                c
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// x ⊔ x = x, and merging anything twice changes nothing the second
    /// time (`merge_from` reports no change).
    #[test]
    fn merge_is_idempotent(a in arb_copy(), b in arb_copy()) {
        let mut self_merge = a.clone();
        self_merge.merge_from(&a.snapshot());
        prop_assert_eq!(canon(&self_merge), canon(&a));

        let mut once = a.clone();
        once.merge_from(&b.snapshot());
        let again = once.merge_from(&b.snapshot());
        prop_assert!(!again, "second identical merge reported a change");
    }

    /// x ⊔ y = y ⊔ x (on the canonical projection — membership vectors may
    /// list members in a different order, which the wire format permits).
    #[test]
    fn merge_is_commutative(a in arb_copy(), b in arb_copy()) {
        prop_assert_eq!(canon(&merged(&a, &b)), canon(&merged(&b, &a)));
    }

    /// (x ⊔ y) ⊔ z = x ⊔ (y ⊔ z).
    #[test]
    fn merge_is_associative(a in arb_copy(), b in arb_copy(), c in arb_copy()) {
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(canon(&left), canon(&right));
    }

    /// Op-replay and state-merge converge: one replica applies the full
    /// update stream (and possibly a split) action by action; a second
    /// replica applies only an arbitrary subset, in reverse order — then a
    /// single state merge from the first must land the second on exactly
    /// the first's state and digest, the way a rehabilitation push or a
    /// restart pull catches a copy up without replaying what it missed.
    #[test]
    fn state_merge_subsumes_op_replay(
        ops in proptest::collection::vec((0u64..100, 0u64..1_000), 1..24),
        applied in proptest::collection::vec(any::<bool>(), 24..25),
        split_at in prop_oneof![Just(None::<usize>), (0usize..24).prop_map(Some)],
    ) {
        let base = {
            let mut c = NodeCopy::new(NODE, 0, KeyRange::new(0, None), ProcId(0));
            for k in [10u64, 40, 70] {
                c.upsert(k, Entry::Val { value: k, stamp: 1 });
            }
            c
        };

        // Replica A: the full stream, stamps unique and increasing (the
        // driver's stamps are globally unique), split applied mid-stream.
        let mut a = base.clone();
        for (i, &(key, value)) in ops.iter().enumerate() {
            if Some(i) == split_at && a.entries.len() >= 2 {
                let (_sep, _sib_range, _moved) = a.half_split();
                a.right = Some(Link::new(NodeId(99), ProcId(3)));
                a.right_link_version = a.version + 1;
                a.version += 1;
            }
            if a.range.contains(key) {
                a.upsert(key, Entry::Val { value, stamp: 2 + i as u64 });
            }
        }

        // Replica B: an arbitrary subset, applied in reverse order (relays
        // to different copies arrive in different interleavings).
        let mut b = base.clone();
        for (i, &(key, value)) in ops.iter().enumerate().rev() {
            if applied.get(i).copied().unwrap_or(false) && b.range.contains(key) {
                b.upsert(key, Entry::Val { value, stamp: 2 + i as u64 });
            }
        }

        b.merge_from(&a.snapshot());
        prop_assert_eq!(canon(&b), canon(&a));
        prop_assert_eq!(b.digest(), a.digest());
    }
}

/// The crash-catch-up race the schedule explorer found (blink-crash,
/// fault-align): a restarted PC splits a leaf, then a §4.3 pull response a
/// peer computed *before* applying the split relay arrives — a stale
/// pre-split snapshot whose right link still names the old neighbour. The
/// merge must keep the split's right link: the node's §4.3 version cannot
/// order links (splits leave it alone), so the join runs on the range's
/// high bound, which the split narrowed in the same atomic action.
#[test]
fn stale_presplit_snapshot_cannot_undo_a_split() {
    // Post-split copy: [20,30), right = the new sibling n11.
    let mut post = NodeCopy::new(NODE, 0, KeyRange::new(20, Some(30)), ProcId(1));
    post.right = Some(Link::new(NodeId(11), ProcId(1)));
    post.right_link_version = 1;
    // Stale pre-split snapshot: [20,40), right = the old neighbour n20 —
    // whose arbitrary tie-break rank happens to beat the sibling's.
    let mut stale = NodeCopy::new(NODE, 0, KeyRange::new(20, Some(40)), ProcId(1));
    stale.right = Some(Link::new(NodeId(20), ProcId(2)));

    let mut healed = post.clone();
    healed.merge_from(&stale.snapshot());
    assert_eq!(healed.right, post.right, "stale snapshot undid the split");
    assert_eq!(healed.range, post.range);

    // And the merge converges from the other side too.
    stale.merge_from(&post.snapshot());
    assert_eq!(stale.right, post.right);
    assert_eq!(stale.digest(), healed.digest());
}

/// The reverse-order replay above silently skips out-of-range keys; this
/// pins that entries B holds *beyond* A's split point are dropped by the
/// merge exactly as [`NodeCopy::apply_split`] would have dropped them.
#[test]
fn merge_drops_entries_the_split_moved_away() {
    let mut a = NodeCopy::new(NODE, 0, KeyRange::new(0, Some(50)), ProcId(0));
    a.upsert(10, Entry::Val { value: 1, stamp: 5 });

    let mut b = NodeCopy::new(NODE, 0, KeyRange::new(0, None), ProcId(0));
    b.upsert(10, Entry::Val { value: 1, stamp: 5 });
    b.upsert(80, Entry::Val { value: 8, stamp: 6 });

    b.merge_from(&a.snapshot());
    assert_eq!(b.range, KeyRange::new(0, Some(50)));
    let keys: Vec<Key> = b.entries.keys().copied().collect();
    assert_eq!(keys, vec![10]);
    assert_eq!(b.digest(), a.digest());
}
