//! Property tests for the anti-entropy state merge
//! ([`NodeCopy::merge_from`]): the recovery layer may deliver snapshots
//! duplicated, reordered, or crossed with one another and with ordinary
//! relayed updates, so the merge must be a join-semilattice on copy state —
//! **commutative**, **associative**, and **idempotent** — and a merge must
//! subsume any prefix/subset of the update stream it summarizes
//! (op-replay and state-merge land every copy on the same digest).

use dbtree::{ChildRef, Entry, Key, KeyRange, Link, NodeCopy, NodeId};
use proptest::prelude::*;
use simnet::ProcId;

/// The node identity every generated copy shares (the merge is only
/// defined between copies of the same logical node).
const NODE: NodeId = NodeId(7);

/// Everything [`NodeCopy::merge_from`] claims to join, order-normalized:
/// membership is position-insensitive on the wire (each member's join
/// version is what matters), so it canonicalizes to a sorted map.
type Canon = (
    KeyRange,
    (u64, u64),
    Vec<(Key, Entry)>,
    [(Option<Link>, u64); 3],
    ProcId,
    Vec<(ProcId, u64)>,
);

fn canon(c: &NodeCopy) -> Canon {
    let mut members: Vec<(ProcId, u64)> = c
        .copies
        .iter()
        .copied()
        .zip(c.join_versions.iter().copied())
        .collect();
    members.sort_unstable_by_key(|(p, _)| *p);
    (
        c.range,
        (c.version, c.absorb_count),
        c.entries.iter().map(|(k, e)| (*k, *e)).collect(),
        [
            (c.right, c.right_link_version),
            (c.left, c.left_link_version),
            (c.parent, c.parent_link_version),
        ],
        c.pc,
        members,
    )
}

fn merged(a: &NodeCopy, b: &NodeCopy) -> NodeCopy {
    let mut out = a.clone();
    out.merge_from(&b.snapshot());
    out
}

fn arb_entry() -> impl Strategy<Value = Entry> {
    prop_oneof![
        (0u64..1_000, 1u64..40).prop_map(|(value, stamp)| Entry::Val { value, stamp }),
        (1u64..40).prop_map(|stamp| Entry::Tomb { stamp }),
        (0u64..12, 0u32..4, 0u64..15).prop_map(|(node, home, version)| Entry::Child(ChildRef {
            node: NodeId(node),
            home: ProcId(home),
            version,
        })),
    ]
}

fn arb_link() -> impl Strategy<Value = Option<Link>> {
    prop_oneof![
        Just(None::<Link>),
        (1u64..12, 0u32..4).prop_map(|(node, home)| Some(Link::new(NodeId(node), ProcId(home)))),
    ]
}

/// An arbitrary copy of `NODE`: a range narrowed to some high bound (splits
/// only ever shrink the high side), entries inside it, arbitrary version,
/// links (each with its change version), PC, and membership.
fn arb_copy() -> impl Strategy<Value = NodeCopy> {
    (
        (
            prop_oneof![Just(None::<u64>), (10u64..120).prop_map(Some)],
            proptest::collection::vec((0u64..120, arb_entry()), 0..12),
            0u64..15,
            arb_link(),
        ),
        (
            arb_link(),
            arb_link(),
            0u32..4,
            proptest::collection::vec((0u32..6, 0u64..15), 1..5),
        ),
        (0u64..6, 0u64..6, 0u64..6),
    )
        .prop_map(
            |((high, entries, version, right), (left, parent, pc, members), (rlv, llv, plv))| {
                let range = KeyRange::new(0, high);
                let mut c = NodeCopy::new(NODE, 0, range, ProcId(pc));
                c.entries = entries
                    .into_iter()
                    .filter(|(k, _)| range.contains(*k))
                    .collect();
                c.version = version;
                c.right = right;
                c.left = left;
                c.parent = parent;
                c.right_link_version = rlv;
                c.left_link_version = llv;
                c.parent_link_version = plv;
                // Dedup members (later join version wins) via a sorted map, the
                // same shape `canon` reduces to.
                let members: std::collections::BTreeMap<u32, u64> = members.into_iter().collect();
                c.copies = members.keys().map(|&p| ProcId(p)).collect();
                c.join_versions = members.values().copied().collect();
                c
            },
        )
}

/// Copies drawn from one *structural timeline* with merge-at-empty in play:
///
/// ```text
/// stage 0  [0, ∞)    epoch 0   pre-split
/// stage 1  [0, 60)   epoch 0   split at 60
/// stage 2  [0, 90)   epoch 1   absorbed the emptied [60, 90) sibling
/// stage 3  [0, ∞)    epoch 2   absorbed the emptied [90, ∞) sibling
/// ```
///
/// The coupling the free generator above cannot express: a copy whose range
/// *re-admits* a region (epoch ≥ 1) carries the retirement's tombstones —
/// with stamps dominating every value any staler copy holds there — because
/// a leaf only retires once fully tombed and the absorb ships those tombs.
/// Without that, "range widened" + "no dominating entry" lets a stale value
/// resurrect in one merge order but not another, and the lattice laws fail.
fn arb_epoch_copies() -> impl Strategy<Value = Vec<NodeCopy>> {
    (
        proptest::collection::vec((0u64..120, 1u64..40, 0u64..1_000), 1..14),
        proptest::collection::vec((0usize..4, any::<u32>()), 3..4),
    )
        .prop_map(|(pool, picks)| {
            // One write per key (first wins): the pool is the set of leaf
            // writes the structure ever saw, each relayed to some copies.
            let mut writes: Vec<(Key, u64, u64)> = Vec::new();
            for (k, stamp, value) in pool {
                if !writes.iter().any(|(wk, ..)| *wk == k) {
                    writes.push((k, stamp, value));
                }
            }
            picks
                .into_iter()
                .map(|(stage, mask)| {
                    let (high, epoch) = match stage {
                        0 => (None, 0),
                        1 => (Some(60), 0),
                        2 => (Some(90), 1),
                        _ => (None, 2),
                    };
                    let range = KeyRange::new(0, high);
                    let mut c = NodeCopy::new(NODE, 0, range, ProcId(0));
                    c.absorb_count = epoch;
                    for (i, &(k, stamp, value)) in writes.iter().enumerate() {
                        if mask >> (i % 32) & 1 == 1 && range.contains(k) {
                            c.upsert(k, Entry::Val { value, stamp });
                        }
                    }
                    // The carried tombstones of each absorb this stage saw.
                    for &(k, ..) in &writes {
                        let readmitted =
                            (epoch >= 1 && (60..90).contains(&k)) || (epoch >= 2 && k >= 90);
                        if readmitted {
                            c.upsert(k, Entry::Tomb { stamp: 49 });
                        }
                    }
                    c
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// x ⊔ x = x, and merging anything twice changes nothing the second
    /// time (`merge_from` reports no change).
    #[test]
    fn merge_is_idempotent(a in arb_copy(), b in arb_copy()) {
        let mut self_merge = a.clone();
        self_merge.merge_from(&a.snapshot());
        prop_assert_eq!(canon(&self_merge), canon(&a));

        let mut once = a.clone();
        once.merge_from(&b.snapshot());
        let again = once.merge_from(&b.snapshot());
        prop_assert!(!again, "second identical merge reported a change");
    }

    /// x ⊔ y = y ⊔ x (on the canonical projection — membership vectors may
    /// list members in a different order, which the wire format permits).
    #[test]
    fn merge_is_commutative(a in arb_copy(), b in arb_copy()) {
        prop_assert_eq!(canon(&merged(&a, &b)), canon(&merged(&b, &a)));
    }

    /// (x ⊔ y) ⊔ z = x ⊔ (y ⊔ z).
    #[test]
    fn merge_is_associative(a in arb_copy(), b in arb_copy(), c in arb_copy()) {
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(canon(&left), canon(&right));
    }

    /// The lattice laws extended over merge-at-empty epochs: copies drawn
    /// from an absorb-bearing structural timeline (with the tombstone
    /// coupling retirement guarantees) still join commutatively,
    /// associatively, and idempotently — the epoch counter orders the
    /// structural part wholesale and the carried tombs make the re-admitted
    /// regions converge by rank.
    #[test]
    fn merge_laws_hold_across_absorb_epochs(fam in arb_epoch_copies()) {
        let (a, b, c) = (&fam[0], &fam[1], &fam[2]);

        let mut self_merge = a.clone();
        self_merge.merge_from(&a.snapshot());
        prop_assert_eq!(canon(&self_merge), canon(a));

        prop_assert_eq!(canon(&merged(a, b)), canon(&merged(b, a)));

        let left = merged(&merged(a, b), c);
        let right = merged(a, &merged(b, c));
        prop_assert_eq!(canon(&left), canon(&right));
        prop_assert_eq!(left.digest(), right.digest());
    }

    /// Op-replay and state-merge converge: one replica applies the full
    /// update stream (and possibly a split) action by action; a second
    /// replica applies only an arbitrary subset, in reverse order — then a
    /// single state merge from the first must land the second on exactly
    /// the first's state and digest, the way a rehabilitation push or a
    /// restart pull catches a copy up without replaying what it missed.
    #[test]
    fn state_merge_subsumes_op_replay(
        ops in proptest::collection::vec((0u64..100, 0u64..1_000), 1..24),
        applied in proptest::collection::vec(any::<bool>(), 24..25),
        split_at in prop_oneof![Just(None::<usize>), (0usize..24).prop_map(Some)],
    ) {
        let base = {
            let mut c = NodeCopy::new(NODE, 0, KeyRange::new(0, None), ProcId(0));
            for k in [10u64, 40, 70] {
                c.upsert(k, Entry::Val { value: k, stamp: 1 });
            }
            c
        };

        // Replica A: the full stream, stamps unique and increasing (the
        // driver's stamps are globally unique), split applied mid-stream.
        let mut a = base.clone();
        for (i, &(key, value)) in ops.iter().enumerate() {
            if Some(i) == split_at && a.entries.len() >= 2 {
                let (_sep, _sib_range, _moved) = a.half_split();
                a.right = Some(Link::new(NodeId(99), ProcId(3)));
                a.right_link_version = a.version + 1;
                a.version += 1;
            }
            if a.range.contains(key) {
                a.upsert(key, Entry::Val { value, stamp: 2 + i as u64 });
            }
        }

        // Replica B: an arbitrary subset, applied in reverse order (relays
        // to different copies arrive in different interleavings).
        let mut b = base.clone();
        for (i, &(key, value)) in ops.iter().enumerate().rev() {
            if applied.get(i).copied().unwrap_or(false) && b.range.contains(key) {
                b.upsert(key, Entry::Val { value, stamp: 2 + i as u64 });
            }
        }

        b.merge_from(&a.snapshot());
        prop_assert_eq!(canon(&b), canon(&a));
        prop_assert_eq!(b.digest(), a.digest());
    }
}

/// The crash-catch-up race the schedule explorer found (blink-crash,
/// fault-align): a restarted PC splits a leaf, then a §4.3 pull response a
/// peer computed *before* applying the split relay arrives — a stale
/// pre-split snapshot whose right link still names the old neighbour. The
/// merge must keep the split's right link: the node's §4.3 version cannot
/// order links (splits leave it alone), so the join runs on the range's
/// high bound, which the split narrowed in the same atomic action.
#[test]
fn stale_presplit_snapshot_cannot_undo_a_split() {
    // Post-split copy: [20,30), right = the new sibling n11.
    let mut post = NodeCopy::new(NODE, 0, KeyRange::new(20, Some(30)), ProcId(1));
    post.right = Some(Link::new(NodeId(11), ProcId(1)));
    post.right_link_version = 1;
    // Stale pre-split snapshot: [20,40), right = the old neighbour n20 —
    // whose arbitrary tie-break rank happens to beat the sibling's.
    let mut stale = NodeCopy::new(NODE, 0, KeyRange::new(20, Some(40)), ProcId(1));
    stale.right = Some(Link::new(NodeId(20), ProcId(2)));

    let mut healed = post.clone();
    healed.merge_from(&stale.snapshot());
    assert_eq!(healed.right, post.right, "stale snapshot undid the split");
    assert_eq!(healed.range, post.range);

    // And the merge converges from the other side too.
    stale.merge_from(&post.snapshot());
    assert_eq!(stale.right, post.right);
    assert_eq!(stale.digest(), healed.digest());
}

/// The merge-at-empty mirror of the stale-presplit case: an absorber that
/// applied an absorb (epoch bumped, range widened, right link adopted) must
/// not be dragged back by a stale pre-absorb snapshot — the epoch counter
/// orders the join wholesale, because unlike splits the range's high bound
/// *grew*, so the narrower-range-wins tie-break alone would pick the wrong
/// side.
#[test]
fn stale_preabsorb_snapshot_cannot_undo_an_absorb() {
    // Post-absorb copy: widened to [20,40), adopted right = n9, epoch 1.
    let mut post = NodeCopy::new(NODE, 0, KeyRange::new(20, Some(40)), ProcId(1));
    post.right = Some(Link::new(NodeId(9), ProcId(2)));
    post.right_link_version = 2;
    post.absorb_count = 1;
    // Stale pre-absorb snapshot: [20,30), right = the retired neighbour.
    let mut stale = NodeCopy::new(NODE, 0, KeyRange::new(20, Some(30)), ProcId(1));
    stale.right = Some(Link::new(NodeId(11), ProcId(1)));
    stale.right_link_version = 1;

    let mut healed = post.clone();
    healed.merge_from(&stale.snapshot());
    assert_eq!(healed.range, post.range, "stale snapshot undid the absorb");
    assert_eq!(healed.right, post.right);
    assert_eq!(healed.absorb_count, 1);

    stale.merge_from(&post.snapshot());
    assert_eq!(stale.range, post.range);
    assert_eq!(stale.right, post.right);
    assert_eq!(stale.digest(), healed.digest());
}

/// Delete → re-insert overwrite stamps survive the state merge: a replica
/// that saw only the tombstone joins with one that saw the later re-insert,
/// and the re-insert wins in both merge orders (stamps totally order the
/// Val/Tomb lattice); symmetrically a later tombstone beats an earlier Val.
#[test]
fn overwrite_stamps_survive_merge() {
    let base = NodeCopy::new(NODE, 0, KeyRange::new(0, None), ProcId(0));

    // A: delete (stamp 5) then re-insert (stamp 9). B: only the delete.
    let mut a = base.clone();
    a.upsert(10, Entry::Tomb { stamp: 5 });
    a.upsert(
        10,
        Entry::Val {
            value: 77,
            stamp: 9,
        },
    );
    let mut b = base.clone();
    b.upsert(10, Entry::Tomb { stamp: 5 });

    let mut ba = b.clone();
    ba.merge_from(&a.snapshot());
    assert_eq!(
        ba.entries.get(&10),
        Some(&Entry::Val {
            value: 77,
            stamp: 9
        }),
        "re-insert after delete lost to the tombstone"
    );
    let mut ab = a.clone();
    ab.merge_from(&b.snapshot());
    assert_eq!(ab.digest(), ba.digest());

    // And the dual: a later tombstone shadows an earlier value.
    let mut c = base.clone();
    c.upsert(10, Entry::Val { value: 3, stamp: 2 });
    let mut d = base.clone();
    d.upsert(10, Entry::Val { value: 3, stamp: 2 });
    d.upsert(10, Entry::Tomb { stamp: 6 });
    c.merge_from(&d.snapshot());
    assert_eq!(c.entries.get(&10), Some(&Entry::Tomb { stamp: 6 }));
}

/// The reverse-order replay above silently skips out-of-range keys; this
/// pins that entries B holds *beyond* A's split point are dropped by the
/// merge exactly as [`NodeCopy::apply_split`] would have dropped them.
#[test]
fn merge_drops_entries_the_split_moved_away() {
    let mut a = NodeCopy::new(NODE, 0, KeyRange::new(0, Some(50)), ProcId(0));
    a.upsert(10, Entry::Val { value: 1, stamp: 5 });

    let mut b = NodeCopy::new(NODE, 0, KeyRange::new(0, None), ProcId(0));
    b.upsert(10, Entry::Val { value: 1, stamp: 5 });
    b.upsert(80, Entry::Val { value: 8, stamp: 6 });

    b.merge_from(&a.snapshot());
    assert_eq!(b.range, KeyRange::new(0, Some(50)));
    let keys: Vec<Key> = b.entries.keys().copied().collect();
    assert_eq!(keys, vec![10]);
    assert_eq!(b.digest(), a.digest());
}
