//! Tests for the extensions beyond the paper's core algorithms: lazy
//! deletes (stamped tombstones, never-merge [11]), last-writer-wins
//! convergence for conflicting same-key writes, and distributed range scans
//! over the leaf chain.

mod common;

use std::collections::{BTreeMap, BTreeSet};

use common::assert_clean;
use dbtree::{
    checker, BuildSpec, ClientOp, DbCluster, GlobalView, Intent, ProtocolKind, TreeConfig,
};
use simnet::{ProcId, SimConfig};

fn build(cfg: TreeConfig, preload: u64, seed: u64) -> DbCluster {
    let spec = BuildSpec::new((0..preload).map(|k| k * 10).collect(), 4, cfg);
    DbCluster::build(&spec, SimConfig::jittery(seed, 2, 25))
}

// ---------------------------------------------------------------------------
// Deletes
// ---------------------------------------------------------------------------

#[test]
fn delete_shadows_then_reinsert_revives() {
    let mut cluster = build(TreeConfig::default(), 100, 1);
    let key = 500u64;
    let steps: Vec<(Intent, Option<u64>)> = vec![
        (Intent::Search, Some(500)), // preloaded value = key
        (Intent::Delete, Some(500)), // delete reports the old value
        (Intent::Search, None),      // gone
        (Intent::Delete, None),      // idempotent-ish: nothing there
        (Intent::Insert(7), None),   // revive
        (Intent::Search, Some(7)),
    ];
    for (i, (intent, expect)) in steps.into_iter().enumerate() {
        cluster.submit(ClientOp {
            origin: ProcId((i % 4) as u32),
            key,
            intent,
        });
        let recs = cluster.run_to_quiescence();
        assert_eq!(recs[0].outcome.found, expect, "step {i}");
    }
}

#[test]
fn deletes_converge_across_replicated_leaves() {
    // Fixed-copies mode: leaf deletes are lazy updates relayed to copies.
    for seed in 0..4 {
        let cfg = TreeConfig::fixed_copies(ProtocolKind::SemiSync, 3);
        let mut cluster = build(cfg, 60, seed);
        // Delete every third preloaded key, from rotating origins.
        let mut deleted = BTreeSet::new();
        for k in (0..60u64).step_by(3) {
            cluster.submit(ClientOp {
                origin: ProcId((k % 4) as u32),
                key: k * 10,
                intent: Intent::Delete,
            });
            deleted.insert(k * 10);
        }
        cluster.run_to_quiescence();

        let view = GlobalView::new(&cluster.sim);
        for k in (0..60u64).map(|k| k * 10) {
            if deleted.contains(&k) {
                assert_eq!(view.find(k), None, "seed {seed}: {k} still visible");
            } else {
                assert_eq!(view.find(k), Some(k), "seed {seed}: {k} vanished");
            }
        }
        // Copies converged and histories are clean.
        let expected: BTreeSet<u64> = (0..60u64)
            .map(|k| k * 10)
            .filter(|k| !deleted.contains(k))
            .collect();
        assert_clean(&mut cluster, &expected);
    }
}

#[test]
fn delete_insert_race_resolves_by_stamp_order_everywhere() {
    // A delete and an insert to the same key race from different
    // processors: whichever outcome wins, every copy agrees.
    for seed in 0..10 {
        let cfg = TreeConfig::fixed_copies(ProtocolKind::SemiSync, 3);
        let mut cluster = build(cfg, 40, seed);
        cluster.submit(ClientOp {
            origin: ProcId(0),
            key: 200,
            intent: Intent::Delete,
        });
        cluster.submit(ClientOp {
            origin: ProcId(2),
            key: 200,
            intent: Intent::Insert(999),
        });
        cluster.run_to_quiescence();
        cluster.record_final_digests();
        let diverged = checker::check_convergence(&cluster.sim);
        assert!(diverged.is_empty(), "seed {seed}: {diverged:?}");
        let view = GlobalView::new(&cluster.sim);
        let got = view.find(200);
        assert!(
            got.is_none() || got == Some(999),
            "seed {seed}: unexpected value {got:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Last-writer-wins convergence
// ---------------------------------------------------------------------------

#[test]
fn conflicting_same_key_writes_converge() {
    // Before stamped entries, this scenario could leave copies permanently
    // divergent: two initial inserts of different values at different copies
    // relaying past each other. Stamps make the merge commute.
    for seed in 0..10 {
        let cfg = TreeConfig::fixed_copies(ProtocolKind::SemiSync, 4);
        let mut cluster = build(cfg, 40, seed);
        for round in 0..20u64 {
            let key = (round % 5) * 10; // heavy same-key contention
            for origin in 0..4u32 {
                cluster.submit(ClientOp {
                    origin: ProcId(origin),
                    key,
                    intent: Intent::Insert(round * 100 + origin as u64),
                });
            }
        }
        cluster.run_to_quiescence();
        cluster.record_final_digests();
        let diverged = checker::check_convergence(&cluster.sim);
        assert!(diverged.is_empty(), "seed {seed}: {diverged:?}");
    }
}

// ---------------------------------------------------------------------------
// Distributed range scans
// ---------------------------------------------------------------------------

#[test]
fn scan_matches_oracle_across_processors() {
    let mut cluster = build(TreeConfig::default(), 300, 5);
    let oracle: BTreeMap<u64, u64> = (0..300u64).map(|k| (k * 10, k * 10)).collect();

    for (from, limit) in [(0u64, 50u32), (995, 20), (1500, 1000), (2990, 10)] {
        cluster.scan(ProcId(1), from, limit);
        cluster.run_to_quiescence();
        let scans = cluster.take_scans();
        assert_eq!(scans.len(), 1);
        let got = &scans[0].items;
        let want: Vec<(u64, u64)> = oracle
            .range(from..)
            .take(limit as usize)
            .map(|(&k, &v)| (k, v))
            .collect();
        assert_eq!(got, &want, "scan from {from} limit {limit}");
        assert!(scans[0].hops > 0);
    }
}

#[test]
fn scan_skips_tombstones() {
    let mut cluster = build(TreeConfig::default(), 50, 2);
    for k in [100u64, 120, 140] {
        cluster.submit(ClientOp {
            origin: ProcId(0),
            key: k,
            intent: Intent::Delete,
        });
    }
    cluster.run_to_quiescence();
    cluster.scan(ProcId(3), 90, 6);
    cluster.run_to_quiescence();
    let scans = cluster.take_scans();
    let keys: Vec<u64> = scans[0].items.iter().map(|e| e.0).collect();
    assert_eq!(keys, vec![90, 110, 130, 150, 160, 170]);
}

#[test]
fn scans_complete_during_split_storms() {
    // Scans are reads: never blocked, navigable mid-split via right links.
    let cfg = TreeConfig {
        fanout: 6,
        ..Default::default()
    };
    let spec = BuildSpec::new((0..100).map(|k| k * 100).collect(), 4, cfg);
    let mut cluster = DbCluster::build(&spec, SimConfig::jittery(9, 2, 30));

    // Blast inserts while issuing scans of the stable preloaded region.
    let mut scan_count = 0;
    for k in 0..400u64 {
        cluster.submit(ClientOp {
            origin: ProcId((k % 4) as u32),
            key: 20_000 + k, // all inserts above the scanned region? no:
            intent: Intent::Insert(k),
        });
        if k % 20 == 19 {
            cluster.scan(ProcId(((k + 1) % 4) as u32), 0, 30);
            scan_count += 1;
        }
        for _ in 0..15 {
            if !cluster.sim.step() {
                break;
            }
        }
    }
    cluster.run_to_quiescence();
    let scans = cluster.take_scans();
    assert_eq!(scans.len(), scan_count);
    for s in &scans {
        assert_eq!(s.items.len(), 30, "scan filled its limit");
        // The first 30 preloaded keys are immutable during the storm.
        let want: Vec<u64> = (0..30u64).map(|k| k * 100).collect();
        let got: Vec<u64> = s.items.iter().map(|e| e.0).collect();
        assert_eq!(got, want);
    }
}

#[test]
fn scan_with_limit_beyond_data_returns_all() {
    let mut cluster = build(TreeConfig::default(), 25, 3);
    cluster.scan(ProcId(0), 0, 10_000);
    cluster.run_to_quiescence();
    let scans = cluster.take_scans();
    assert_eq!(scans[0].items.len(), 25);
}

#[test]
fn scans_survive_racing_migrations() {
    // Regression: a scan addressed to a leaf that migrated away must
    // restart at a close local node, not ping-pong via the root's home
    // forever. Mobile mode, no forwarding addresses.
    use dbtree::Placement;
    for seed in 0..6u64 {
        let cfg = TreeConfig {
            placement: Placement::Uniform { copies: 1 },
            forwarding: false,
            ..Default::default()
        };
        let spec = BuildSpec::new((0..200).map(|k| k * 10).collect(), 4, cfg);
        let mut cluster = DbCluster::build(&spec, SimConfig::jittery(seed, 2, 40));
        // Kick off scans, then immediately migrate leaves they will touch.
        for p in 0..4u32 {
            cluster.scan(ProcId(p), 0, 150);
        }
        let leaves = cluster.leaves();
        for (i, (leaf, owner)) in leaves.iter().enumerate().take(10) {
            cluster.migrate(*leaf, *owner, ProcId((owner.0 + 1 + i as u32) % 4));
        }
        cluster.run_to_quiescence();
        let scans = cluster.take_scans();
        assert_eq!(scans.len(), 4, "seed {seed}: every scan completed");
        for s in &scans {
            assert_eq!(s.items.len(), 150, "seed {seed}: scan filled");
            assert!(s.items.windows(2).all(|w| w[0].0 < w[1].0), "ordered");
        }
    }
}
