//! End-to-end protocol tests: each §4 algorithm under concurrent workloads
//! on a jittery network, validated against the §3 requirements.

mod common;

use std::collections::BTreeSet;

use common::{assert_clean, run_workload};
use dbtree::{checker, BuildSpec, ClientOp, DbCluster, Intent, ProtocolKind, TreeConfig};
use simnet::{ProcId, SimConfig};
use workload::Mix;

// ---------------------------------------------------------------------------
// §4.1.2 semisync — the paper's protocol
// ---------------------------------------------------------------------------

#[test]
fn semisync_path_replication_heavy_inserts() {
    let (mut cluster, expected) =
        run_workload(TreeConfig::default(), 4, 200, 600, Mix::INSERT_ONLY, 1);
    assert_clean(&mut cluster, &expected);
}

#[test]
fn semisync_mixed_workload_many_seeds() {
    for seed in 0..5 {
        let (mut cluster, expected) = run_workload(
            TreeConfig::default(),
            6,
            100,
            400,
            Mix {
                search_fraction: 0.5,
                ..Mix::INSERT_ONLY
            },
            seed,
        );
        assert_clean(&mut cluster, &expected);
    }
}

#[test]
fn semisync_fixed_copies_replicated_leaves() {
    // §4.1's testbed: every node (leaves included) on 3 processors, so
    // initial inserts at different copies race with splits.
    for seed in 0..5 {
        let cfg = TreeConfig::fixed_copies(ProtocolKind::SemiSync, 3);
        let (mut cluster, expected) = run_workload(cfg, 4, 50, 400, Mix::INSERT_ONLY, seed);
        assert_clean(&mut cluster, &expected);
    }
}

#[test]
fn semisync_sequential_insert_storm() {
    // Ascending keys: every insert hits the rightmost leaf — a split storm.
    let cfg = TreeConfig::default();
    let spec = BuildSpec::new(vec![0], 4, cfg);
    let mut cluster = DbCluster::build(&spec, SimConfig::jittery(7, 2, 20));
    let ops: Vec<ClientOp> = (1..500u64)
        .map(|k| ClientOp {
            origin: ProcId((k % 4) as u32),
            key: k,
            intent: Intent::Insert(k),
        })
        .collect();
    let stats = cluster.run_closed_loop(&ops, 2);
    assert_eq!(stats.records.len(), 499);
    let expected: BTreeSet<u64> = (0..500).collect();
    assert_clean(&mut cluster, &expected);
}

#[test]
fn semisync_grows_multiple_levels() {
    let cfg = TreeConfig {
        fanout: 4,
        ..Default::default()
    };
    let spec = BuildSpec::new(vec![], 3, cfg);
    let mut cluster = DbCluster::build(&spec, SimConfig::seeded(3));
    let ops: Vec<ClientOp> = (0..300u64)
        .map(|k| ClientOp {
            origin: ProcId((k % 3) as u32),
            key: k * 7 % 1000,
            intent: Intent::Insert(k),
        })
        .collect();
    cluster.run_closed_loop(&ops, 3);
    let expected: BTreeSet<u64> = (0..300u64).map(|k| k * 7 % 1000).collect();
    assert_clean(&mut cluster, &expected);
    // The tree actually grew: a root at level >= 2 exists somewhere.
    let view = dbtree::GlobalView::new(&cluster.sim);
    let max_level = view.nodes_per_level().keys().max().copied().unwrap_or(0);
    assert!(max_level >= 2, "tree height grew (max level {max_level})");
}

// ---------------------------------------------------------------------------
// §4.1.1 sync
// ---------------------------------------------------------------------------

#[test]
fn sync_fixed_copies_correct() {
    for seed in 0..5 {
        let cfg = TreeConfig::fixed_copies(ProtocolKind::Sync, 3);
        let (mut cluster, expected) = run_workload(cfg, 4, 50, 400, Mix::INSERT_ONLY, seed);
        assert_clean(&mut cluster, &expected);
    }
}

#[test]
fn sync_blocks_initial_inserts_during_splits() {
    let cfg = TreeConfig::fixed_copies(ProtocolKind::Sync, 4);
    let (cluster, _) = run_workload(cfg, 4, 50, 800, Mix::INSERT_ONLY, 11);
    let blocked: u64 = cluster
        .sim
        .procs()
        .map(|(_, p)| p.metrics.blocked_initial)
        .sum();
    assert!(blocked > 0, "AAS blocked at least one initial insert");
}

#[test]
fn semisync_never_blocks_initial_inserts() {
    let cfg = TreeConfig::fixed_copies(ProtocolKind::SemiSync, 4);
    let (cluster, _) = run_workload(cfg, 4, 50, 800, Mix::INSERT_ONLY, 11);
    let blocked: u64 = cluster
        .sim
        .procs()
        .map(|(_, p)| p.metrics.blocked_initial)
        .sum();
    assert_eq!(blocked, 0, "semisync never blocks (§4.1.2)");
}

// ---------------------------------------------------------------------------
// Fig 4 — the naive protocol loses inserts; semisync does not
// ---------------------------------------------------------------------------

#[test]
fn naive_protocol_loses_keys_semisync_does_not() {
    let mut naive_lost_total = 0usize;
    for seed in 0..10 {
        let run = |protocol| {
            let cfg = TreeConfig {
                fanout: 6,
                ..TreeConfig::fixed_copies(protocol, 3)
            };
            let (mut cluster, expected) = run_workload(cfg, 4, 30, 500, Mix::INSERT_ONLY, seed);
            cluster.record_final_digests();
            let violations = checker::check_keys(&cluster.sim, &expected);
            violations.len()
        };
        let semisync_lost = run(ProtocolKind::SemiSync);
        assert_eq!(semisync_lost, 0, "semisync loses nothing (seed {seed})");
        naive_lost_total += run(ProtocolKind::Naive);
    }
    assert!(
        naive_lost_total > 0,
        "the Fig 4 bug reproduces across 10 seeds"
    );
}

// ---------------------------------------------------------------------------
// Available-copies baseline
// ---------------------------------------------------------------------------

#[test]
fn available_copies_correct() {
    for seed in 0..3 {
        let cfg = TreeConfig::fixed_copies(ProtocolKind::AvailableCopies, 3);
        let (mut cluster, expected) = run_workload(cfg, 4, 50, 300, Mix::INSERT_ONLY, seed);
        assert_clean(&mut cluster, &expected);
    }
}

#[test]
fn available_copies_queues_actions_behind_locks() {
    let cfg = TreeConfig::fixed_copies(ProtocolKind::AvailableCopies, 4);
    let (cluster, _) = run_workload(
        cfg,
        4,
        50,
        800,
        Mix {
            search_fraction: 0.5,
            ..Mix::INSERT_ONLY
        },
        5,
    );
    let queued: u64 = cluster
        .sim
        .procs()
        .map(|(_, p)| p.metrics.lock_queued)
        .sum();
    assert!(queued > 0, "locks made actions wait: {queued}");
}

#[test]
fn lazy_uses_fewer_messages_than_vigorous() {
    let run = |protocol| {
        let cfg = TreeConfig::fixed_copies(protocol, 4);
        let (cluster, _) = run_workload(cfg, 4, 50, 500, Mix::INSERT_ONLY, 9);
        cluster.sim.stats().remote_messages()
    };
    let lazy = run(ProtocolKind::SemiSync);
    let vigorous = run(ProtocolKind::AvailableCopies);
    assert!(
        vigorous > lazy,
        "available-copies ({vigorous}) must cost more than semisync ({lazy})"
    );
}

// ---------------------------------------------------------------------------
// Piggybacking
// ---------------------------------------------------------------------------

#[test]
fn piggybacking_is_correct_and_reduces_messages() {
    let run = |piggyback| {
        let cfg = TreeConfig {
            piggyback,
            ..TreeConfig::fixed_copies(ProtocolKind::SemiSync, 3)
        };
        let (mut cluster, expected) = run_workload(cfg, 4, 50, 600, Mix::INSERT_ONLY, 21);
        assert_clean(&mut cluster, &expected);
        let s = cluster.sim.stats();
        s.kind("insert.relay").remote + s.kind("insert.relay-batch").remote
    };
    let plain = run(None);
    let batched = run(Some(dbtree::PiggybackCfg::default()));
    assert!(
        batched < plain / 2,
        "batching cuts relay messages: {batched} vs {plain}"
    );
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

#[test]
fn runs_are_deterministic_given_seed() {
    let run = || {
        let (cluster, _) = run_workload(
            TreeConfig::default(),
            4,
            100,
            300,
            Mix {
                search_fraction: 0.3,
                ..Mix::INSERT_ONLY
            },
            77,
        );
        (
            cluster.sim.stats().total_messages(),
            cluster.sim.now(),
            cluster.sim.events_delivered(),
        )
    };
    assert_eq!(run(), run());
}
