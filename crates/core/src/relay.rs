//! Lazy relays: propagating applied updates to the other copies, with
//! optional piggyback batching (§1.1).

use history::ObserveKind;
use simnet::Context;

use crate::config::ProtocolKind;
use crate::msg::{Msg, RelayedItem};
use crate::proc::{DbProc, TIMER_PIGGYBACK};
use crate::types::{Entry, Key, NodeId};

impl DbProc {
    /// Relay an applied update to every other copy of `node`.
    ///
    /// With piggybacking enabled, relays are buffered per destination and
    /// flushed when a buffer fills or the flush timer fires — the paper's
    /// observation that lazy updates need not travel on their own messages.
    pub(crate) fn relay_update(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        node: NodeId,
        key: Key,
        entry: Entry,
        tag: u64,
        version: u64,
    ) {
        let peers: Vec<_> = {
            let Some(copy) = self.store.get(node) else {
                return;
            };
            copy.peers(self.me).collect()
        };
        // Quarantined peers get no relays — the session layer would only
        // retransmit them into the void. Record the node instead; one state
        // sync at rehabilitation subsumes everything it missed.
        let peers: Vec<_> = peers
            .into_iter()
            .filter(|p| !self.suppress_if_quarantined(*p, node))
            .collect();
        if peers.is_empty() {
            return;
        }
        // Stamp the relay with the current action's span: piggybacked items
        // sit in the buffer past the end of this action, so the payload must
        // carry the attribution itself.
        let span = ctx.span();
        let item = RelayedItem {
            node,
            key,
            entry,
            tag,
            version,
            span,
        };
        if self.cfg.relay_suppress_proc == Some(self.me.0) {
            // Seeded E21 fault: buffer the relays per destination exactly as
            // piggybacking would, but never send a batch and never arm the
            // flush timer — the backlog depth and oldest-entry age grow for
            // the rest of the run, and the `backlog_growth` watchdog is
            // expected to name this processor.
            let now = ctx.now().ticks();
            for peer in peers {
                let buf = self.relay_buf.entry(peer).or_default();
                if buf.is_empty() {
                    self.relay_buf_since.insert(peer, now);
                }
                buf.push(item.clone());
            }
            return;
        }
        match self.cfg.piggyback {
            None => {
                for peer in peers {
                    ctx.send(
                        peer,
                        Msg::RelayedInsert {
                            node,
                            key,
                            entry,
                            tag,
                            version,
                            span,
                        },
                    );
                }
            }
            Some(pb) => {
                let now = ctx.now().ticks();
                let mut full: Vec<simnet::ProcId> = Vec::new();
                for peer in peers {
                    let buf = self.relay_buf.entry(peer).or_default();
                    if buf.is_empty() {
                        self.relay_buf_since.insert(peer, now);
                    }
                    buf.push(item.clone());
                    if buf.len() >= pb.max_batch {
                        full.push(peer);
                    }
                }
                for peer in full {
                    if let Some(batch) = self.relay_buf.remove(&peer) {
                        self.relay_buf_since.remove(&peer);
                        ctx.send(peer, Msg::RelayBatch(batch));
                    }
                }
                if !self.relay_buf.is_empty() && !self.relay_timer_armed {
                    self.relay_timer_armed = true;
                    ctx.set_timer(pb.flush_interval, TIMER_PIGGYBACK);
                }
            }
        }
    }

    /// Flush all piggyback buffers (timer handler).
    pub(crate) fn flush_relays(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.cfg.relay_suppress_proc == Some(self.me.0) {
            // Seeded E21 fault: the backlog never drains (restart-triggered
            // flushes included), so its gauges keep growing.
            return;
        }
        self.relay_buf_since.clear();
        let bufs = std::mem::take(&mut self.relay_buf);
        for (peer, batch) in bufs {
            if batch.is_empty() {
                continue;
            }
            if self.quarantined.contains(&peer) {
                // The peer went suspect after these were buffered.
                for item in &batch {
                    self.suppress_if_quarantined(peer, item.node);
                }
                continue;
            }
            ctx.send(peer, Msg::RelayBatch(batch));
        }
    }

    /// If `peer` is quarantined, record that it missed an update to `node`
    /// and return `true` (the caller drops the relay).
    pub(crate) fn suppress_if_quarantined(&mut self, peer: simnet::ProcId, node: NodeId) -> bool {
        if !self.quarantined.contains(&peer) {
            return false;
        }
        self.metrics.relays_suppressed += 1;
        self.missed.entry(peer).or_default().insert(node);
        true
    }

    /// A relayed insert arrives at this processor.
    pub(crate) fn handle_relayed_insert(&mut self, ctx: &mut Context<'_, Msg>, item: RelayedItem) {
        if !self.store.contains(item.node) {
            if let Some(&left) = self.retired.get(&item.node) {
                // The node was merged away while this relay was in flight.
                // The write it carries was applied (and client-acknowledged)
                // at some copy before the retirement, so it must not be
                // dropped: re-issue it as an initial insert toward the
                // absorbing left sibling — the same history rewrite the
                // semisync protocol applies to out-of-range relays. The LWW
                // stamp keeps duplicates (several copies rerouting the same
                // relay) idempotent.
                self.metrics.relays_rerouted += 1;
                let msg = Msg::InsertAt {
                    node: left.node,
                    level: 0,
                    key: item.key,
                    entry: item.entry,
                    tag: item.tag,
                };
                self.send_to_node(ctx, left.node, left.home, msg);
                return;
            }
            if self.unjoined.contains(&item.node) {
                // §4.3: a departed member discards relayed actions.
                self.metrics.relays_discarded += 1;
            } else {
                // The copy's install is still in flight (sibling creation or
                // join grant racing the relay on another channel): stash and
                // replay on install.
                let RelayedItem {
                    node,
                    key,
                    entry,
                    tag,
                    version,
                    span,
                } = item;
                self.stash
                    .entry(node)
                    .or_default()
                    .push(Msg::RelayedInsert {
                        node,
                        key,
                        entry,
                        tag,
                        version,
                        span,
                    });
            }
            return;
        }
        self.apply_relayed_insert(ctx, item);
    }

    /// Apply a relayed insert at a resident copy.
    pub(crate) fn apply_relayed_insert(&mut self, ctx: &mut Context<'_, Msg>, item: RelayedItem) {
        let RelayedItem {
            node,
            key,
            entry,
            tag,
            version,
            span,
        } = item;
        let copy = self.store.get_mut(node).expect("caller ensured resident");
        let is_pc = copy.pc == self.me;
        let in_range = copy.range.contains(key);

        if in_range {
            copy.upsert(key, entry);
            let my_version = copy.version;
            // §4.3: the PC re-relays to members that joined after the
            // initial copy applied the insert — they were not in the initial
            // copy's membership list and would otherwise miss it (Fig 6).
            let late: Vec<_> = if is_pc && self.cfg.join_version_relay {
                copy.members_joined_after(version).collect()
            } else {
                Vec::new()
            };
            self.metrics.relays_applied += 1;
            // Per-copy staleness stamp: this copy is up to date with the
            // relay stream as of now.
            self.copy_stamp.insert(node, ctx.now().ticks());
            self.log
                .lock()
                .observe(node.raw(), self.me.0, tag, ObserveKind::Applied);
            for member in late {
                if member != self.me && !self.suppress_if_quarantined(member, node) {
                    ctx.send(
                        member,
                        Msg::RelayedInsert {
                            node,
                            key,
                            entry,
                            tag,
                            version: my_version,
                            span,
                        },
                    );
                }
            }
            if is_pc {
                self.maybe_split(ctx, node);
                // A relayed tombstone may have emptied the leaf at its PC.
                self.maybe_merge(ctx, node);
            }
            return;
        }

        // Out of range: the key's range has already split away from this
        // copy.
        if is_pc {
            match self.cfg.protocol {
                ProtocolKind::SemiSync => {
                    // Rewrite history (§4.1.2): re-issue as an initial
                    // insert toward the right neighbour, so the update lands
                    // where the split moved its range.
                    let (right, level) = {
                        let c = self.store.get(node).expect("resident");
                        (c.right, c.level)
                    };
                    let right = right.expect("out-of-range key implies a right sibling");
                    self.metrics.relays_forwarded += 1;
                    self.log
                        .lock()
                        .observe(node.raw(), self.me.0, tag, ObserveKind::Forwarded);
                    let msg = Msg::InsertAt {
                        node: right.node,
                        level,
                        key,
                        entry,
                        tag,
                    };
                    self.send_to_node(ctx, right.node, right.home, msg);
                }
                ProtocolKind::Naive => {
                    // Fig 4's bug, preserved on purpose: the PC ignores the
                    // out-of-range relayed insert and the update is lost.
                    self.metrics.relays_discarded += 1;
                    self.log
                        .lock()
                        .observe(node.raw(), self.me.0, tag, ObserveKind::Discarded);
                }
                ProtocolKind::Sync | ProtocolKind::AvailableCopies => {
                    // The synchronizing protocols order inserts before
                    // splits, so an out-of-range relay at the PC means its
                    // key was already re-homed by the split that the initial
                    // copy observed before relaying. Discarding is safe.
                    self.metrics.relays_discarded += 1;
                    self.log
                        .lock()
                        .observe(node.raw(), self.me.0, tag, ObserveKind::Discarded);
                }
            }
        } else {
            // Non-PC copies always discard out-of-range relays: the split
            // that shrank the range carried the key's fate (§4.1 rule 3).
            self.metrics.relays_discarded += 1;
            self.log
                .lock()
                .observe(node.raw(), self.me.0, tag, ObserveKind::Discarded);
        }
    }
}
