//! Leaf-level data balancing (§4.2, \[14\]).
//!
//! The paper's companion work migrates leaves between processors to equalize
//! load, relying on the lazy mobile-node protocol for correctness. The
//! planner here is the *policy* half: given the current leaf placement, it
//! produces a migration plan that the cluster driver injects as `Migrate`
//! commands (the *mechanism* half, `protocol::mobile`).

use simnet::ProcId;

use crate::tree::DbSim;
use crate::types::NodeId;

/// One planned migration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Move {
    /// The leaf to move.
    pub leaf: NodeId,
    /// Current owner.
    pub from: ProcId,
    /// Destination.
    pub to: ProcId,
}

/// Per-processor leaf counts (index = processor id).
pub fn leaf_loads(sim: &DbSim) -> Vec<usize> {
    sim.procs().map(|(_, p)| p.store.leaf_count()).collect()
}

/// Relative imbalance: `(max - min) / mean` of per-processor leaf counts.
pub fn imbalance(loads: &[usize]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let max = *loads.iter().max().expect("nonempty") as f64;
    let min = *loads.iter().min().expect("nonempty") as f64;
    let mean = loads.iter().sum::<usize>() as f64 / loads.len() as f64;
    if mean == 0.0 {
        0.0
    } else {
        (max - min) / mean
    }
}

/// Greedy rebalancing plan: repeatedly move a leaf from the most-loaded to
/// the least-loaded processor until the spread is at most `tolerance`
/// leaves. Deterministic: picks the lowest-numbered movable leaf each step.
pub fn plan_rebalance(sim: &DbSim, tolerance: usize) -> Vec<Move> {
    let mut loads = leaf_loads(sim);
    // Collect each processor's leaves once.
    let mut leaves_by_proc: Vec<Vec<NodeId>> = sim
        .procs()
        .map(|(_, p)| {
            let mut v: Vec<NodeId> = p
                .store
                .iter()
                .filter(|c| c.is_leaf())
                .map(|c| c.id)
                .collect();
            v.sort_unstable();
            v
        })
        .collect();

    let mut plan = Vec::new();
    loop {
        let (max_i, &max_load) = loads
            .iter()
            .enumerate()
            .max_by_key(|&(i, l)| (*l, std::cmp::Reverse(i)))
            .expect("nonempty cluster");
        let (min_i, &min_load) = loads
            .iter()
            .enumerate()
            .min_by_key(|&(i, l)| (*l, i))
            .expect("nonempty cluster");
        if max_load.saturating_sub(min_load) <= tolerance.max(1) {
            return plan;
        }
        let Some(leaf) = leaves_by_proc[max_i].pop() else {
            return plan;
        };
        plan.push(Move {
            leaf,
            from: ProcId(max_i as u32),
            to: ProcId(min_i as u32),
        });
        loads[max_i] -= 1;
        loads[min_i] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_metric() {
        assert_eq!(imbalance(&[5, 5, 5]), 0.0);
        assert!(imbalance(&[10, 0, 5]) > 1.9);
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance(&[0, 0]), 0.0);
    }
}
