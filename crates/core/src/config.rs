//! Tree configuration: protocol, placement, and feature toggles.

/// Which replica-maintenance protocol maintains interior-node copies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProtocolKind {
    /// §4.1.1 — synchronous splits: an AAS blocks initial inserts at every
    /// copy while the PC performs the split. `3·|copies|` messages per split.
    Sync,
    /// §4.1.2 — semi-synchronous splits: the PC splits immediately and
    /// *rewrites history* when a relayed insert arrives out of range
    /// (re-issuing it toward the sibling). Never blocks inserts;
    /// `|copies|` messages per split (optimal).
    SemiSync,
    /// The deliberately broken lazy protocol of Fig 4: like `SemiSync`, but
    /// the PC **discards** out-of-range relayed inserts instead of
    /// re-routing them. Exists to demonstrate the lost-insert problem; the
    /// history checker flags its executions.
    Naive,
    /// The vigorous baseline the paper argues against (\[2\]): every update to
    /// a replicated node locks all copies (write-all), blocking reads and
    /// other writes at every copy for the duration.
    AvailableCopies,
}

impl ProtocolKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::Sync => "sync",
            ProtocolKind::SemiSync => "semisync",
            ProtocolKind::Naive => "naive",
            ProtocolKind::AvailableCopies => "avail-copies",
        }
    }
}

/// Where copies of nodes are placed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Placement {
    /// The dB-tree policy (Fig 2): leaves on a single processor; an interior
    /// node is replicated on every processor that owns a leaf below it; the
    /// root is everywhere.
    PathReplication,
    /// Every node on exactly `copies` processors (the §4.1 fixed-copies
    /// setting; `copies = 1` gives the fully-unreplicated tree used by the
    /// root-bottleneck and mobile-node experiments).
    Uniform {
        /// Replication factor.
        copies: usize,
    },
}

impl Placement {
    /// Short label for reports.
    pub fn label(self) -> String {
        match self {
            Placement::PathReplication => "path".to_string(),
            Placement::Uniform { copies } => format!("uniform{copies}"),
        }
    }
}

/// Relay piggybacking (§1.1: lazy updates "can be piggybacked onto messages
/// used for other purposes, greatly reducing the cost of replication
/// management"). Modelled as per-destination batching of relayed updates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PiggybackCfg {
    /// Flush a destination's buffer when it holds this many relays.
    pub max_batch: usize,
    /// Flush all buffers at most this many ticks after the first buffered
    /// relay (bounds staleness; guarantees quiescence).
    pub flush_interval: u64,
}

impl Default for PiggybackCfg {
    fn default() -> Self {
        PiggybackCfg {
            max_batch: 8,
            flush_interval: 50,
        }
    }
}

/// Full configuration of a dB-tree deployment.
#[derive(Clone, Debug)]
pub struct TreeConfig {
    /// Maximum entries per node before it must split.
    pub fanout: usize,
    /// Replica-maintenance protocol.
    pub protocol: ProtocolKind,
    /// Copy placement policy.
    pub placement: Placement,
    /// Batch relayed updates instead of sending each immediately.
    pub piggyback: Option<PiggybackCfg>,
    /// On migration, leave a forwarding address behind (§4.2's eager aid);
    /// `false` exercises pure lazy misnavigation recovery.
    pub forwarding: bool,
    /// Garbage-collect forwarding addresses after this many ticks.
    pub forwarding_ttl: u64,
    /// §4.3 variable copies: processors join/unjoin interior replication as
    /// leaves migrate to/from them.
    pub variable_copies: bool,
    /// Fig 6 toggle: when `true` (the paper's algorithm) the PC re-relays
    /// updates to copies that joined after the update's version. `false`
    /// reproduces the incomplete-history failure.
    pub join_version_relay: bool,
    /// Record a [`history::HistoryLog`] for end-of-run verification.
    pub record_history: bool,
    /// On crash restart, pull a state-based anti-entropy sync
    /// ([`crate::Msg::SyncReq`]) for every copy the stable store retained,
    /// merging a live peer's state over whatever survived the crash.
    /// Quarantine catch-up *pushes* (from peers that suppressed relays
    /// while this processor was suspect) happen regardless; this governs
    /// only the restarting side's pulls.
    pub sync_on_restart: bool,
    /// Lazy merge-at-empty: when tombstones leave a leaf with no live
    /// values, its PC asks the parent's PC for a merge grant, retires the
    /// leaf (forwarding address + parent-edge tombstone) and has the left
    /// sibling *absorb* its range through the half-split link invariants in
    /// reverse. `false` preserves the paper's never-merge policy (\[11\]).
    pub merge_at_empty: bool,
    /// Deliberately broken merge (the `Naive` analogue for the merge
    /// family): the grant-commit skips the re-verification that the leaf is
    /// still empty of live values, so an insert that raced the grant is
    /// silently dropped with the retired node. Exists only so the explorer
    /// can demonstrate (and shrink) the merge/insert race the re-verify
    /// closes; never enable it outside that experiment.
    pub merge_unsafe_no_reverify: bool,
    /// Deliberately wedged merge (a seeded *liveness* bug, the counterpart
    /// of `merge_unsafe_no_reverify`'s safety bug): the parent's PC
    /// silently drops every `MergeReq`, so a quiescent all-tombstone leaf
    /// keeps its merge pending forever, and leaf writes that arrive while
    /// the merge is pending are parked awaiting a grant that never comes.
    /// Exists only so the model checker's liveness oracle has a
    /// reproducible livelock to catch; never enable it outside that
    /// experiment.
    pub merge_wedge_grants: bool,
    /// Seeded relay-suppression fault (the E21 lazy-lag experiment's
    /// injected incident): the named processor keeps *buffering* relayed
    /// updates per destination but never batch-sends them and never arms
    /// the piggyback flush timer, so its relay backlog depth and oldest-entry
    /// age grow monotonically for the rest of the run. Buffered relays are
    /// plain state, so quiescence is unaffected; the health watchdogs are
    /// expected to raise a `backlog_growth` alert on exactly this processor.
    /// Exists only so the observability stack has a reproducible incident to
    /// detect; never enable it outside that experiment.
    pub relay_suppress_proc: Option<u32>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            fanout: 8,
            protocol: ProtocolKind::SemiSync,
            placement: Placement::PathReplication,
            piggyback: None,
            forwarding: false,
            forwarding_ttl: 500,
            variable_copies: false,
            join_version_relay: true,
            record_history: true,
            sync_on_restart: true,
            merge_at_empty: false,
            merge_unsafe_no_reverify: false,
            merge_wedge_grants: false,
            relay_suppress_proc: None,
        }
    }
}

impl TreeConfig {
    /// Default config with the given protocol.
    pub fn with_protocol(protocol: ProtocolKind) -> Self {
        TreeConfig {
            protocol,
            ..Default::default()
        }
    }

    /// The §4.1 fixed-copies testbed: every node (leaves included) on
    /// `copies` processors.
    pub fn fixed_copies(protocol: ProtocolKind, copies: usize) -> Self {
        TreeConfig {
            protocol,
            placement: Placement::Uniform { copies },
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(ProtocolKind::SemiSync.label(), "semisync");
        assert_eq!(Placement::PathReplication.label(), "path");
        assert_eq!(Placement::Uniform { copies: 3 }.label(), "uniform3");
    }

    #[test]
    fn defaults_are_the_paper_protocol() {
        let c = TreeConfig::default();
        assert_eq!(c.protocol, ProtocolKind::SemiSync);
        assert_eq!(c.placement, Placement::PathReplication);
        assert!(c.join_version_relay);
    }
}
