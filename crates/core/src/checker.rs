//! Global end-of-run checkers: the executable form of what the paper's
//! theorems promise at the end of a computation.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use history::oracle::{check_sequences, SeqAction};
use history::HistoryLog;
use simnet::ProcId;

use crate::node::NodeCopy;
use crate::proc::DbProc;
use crate::tree::DbSim;
use crate::types::{Entry, Key, NodeId};

/// A violation found by the global checker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeViolation {
    /// Copies of one node ended with different values.
    Diverged {
        /// The node.
        node: NodeId,
        /// Distinct digests seen.
        digests: Vec<u64>,
    },
    /// An expected key is not findable by root navigation.
    KeyLost {
        /// The missing key.
        key: Key,
    },
    /// A deleted key is still findable by root navigation (a lost delete:
    /// its tombstone was dropped, e.g. by an unsafe merge commit).
    DeletedKeyVisible {
        /// The key that should be gone.
        key: Key,
    },
    /// The leaf chain does not tile the key space.
    BrokenLeafChain {
        /// Description of the break.
        detail: String,
    },
    /// A processor owns a leaf but is missing an ancestor copy
    /// (the dB-tree path-replication property, Fig 2).
    PathPropertyBroken {
        /// The processor.
        proc: ProcId,
        /// The leaf it owns.
        leaf: NodeId,
        /// The ancestor it is missing.
        missing: NodeId,
    },
    /// A processor still has stashed protocol events at quiescence
    /// (an install never arrived).
    DanglingStash {
        /// The processor.
        proc: ProcId,
        /// The node whose events are stashed.
        node: NodeId,
        /// How many events.
        count: usize,
    },
    /// The history log reported violations (stringified).
    History {
        /// Rendered violations.
        detail: String,
    },
}

impl std::fmt::Display for TreeViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeViolation::Diverged { node, digests } => {
                write!(f, "node {node:?} diverged across copies: {digests:?}")
            }
            TreeViolation::KeyLost { key } => write!(f, "key {key} lost"),
            TreeViolation::DeletedKeyVisible { key } => {
                write!(f, "deleted key {key} still visible")
            }
            TreeViolation::BrokenLeafChain { detail } => write!(f, "broken leaf chain: {detail}"),
            TreeViolation::PathPropertyBroken {
                proc,
                leaf,
                missing,
            } => write!(
                f,
                "{proc} owns leaf {leaf:?} but lacks ancestor {missing:?}"
            ),
            TreeViolation::DanglingStash { proc, node, count } => {
                write!(f, "{proc} has {count} stashed events for {node:?}")
            }
            TreeViolation::History { detail } => write!(f, "history: {detail}"),
        }
    }
}

/// A read-only global view over every processor's store.
pub struct GlobalView<'a> {
    /// node → (proc, copy) for every resident copy.
    pub copies: HashMap<NodeId, Vec<(ProcId, &'a NodeCopy)>>,
    root: Option<NodeId>,
}

impl<'a> GlobalView<'a> {
    /// Snapshot the cluster.
    pub fn new(sim: &'a DbSim) -> Self {
        Self::from_procs(sim.procs().map(|(pid, p)| (pid, &**p)))
    }

    /// Snapshot from bare processor states — the form that works after a
    /// threaded cluster's shutdown handed its processes back.
    pub fn from_procs(procs: impl IntoIterator<Item = (ProcId, &'a DbProc)>) -> Self {
        let mut copies: HashMap<NodeId, Vec<(ProcId, &'a NodeCopy)>> = HashMap::new();
        let mut root = None;
        let mut root_level = 0;
        for (pid, proc) in procs {
            for copy in proc.store.iter() {
                copies.entry(copy.id).or_default().push((pid, copy));
            }
            if let Some(r) = proc.store.root() {
                let level = proc.store.get(r).map(|c| c.level).unwrap_or(0);
                if root.is_none() || level > root_level {
                    root = Some(r);
                    root_level = level;
                }
            }
        }
        GlobalView { copies, root }
    }

    /// An authoritative copy of a node: the PC's copy if resident, else the
    /// lowest-numbered processor's.
    pub fn authoritative(&self, node: NodeId) -> Option<&'a NodeCopy> {
        let list = self.copies.get(&node)?;
        list.iter()
            .find(|(p, c)| *p == c.pc)
            .or_else(|| list.iter().min_by_key(|(p, _)| *p))
            .map(|(_, c)| *c)
    }

    /// Navigate from the root to the leaf responsible for `key`, returning
    /// the path of node ids (root first). `None` if navigation gets stuck.
    pub fn path_to(&self, key: Key) -> Option<Vec<NodeId>> {
        let mut path = Vec::new();
        let mut cur = self.root?;
        let mut fuel = 10_000;
        loop {
            fuel -= 1;
            if fuel == 0 {
                return None;
            }
            let copy = self.authoritative(cur)?;
            if copy.range.is_right_of(key) {
                cur = copy.right?.node;
                continue;
            }
            path.push(cur);
            if copy.is_leaf() {
                return Some(path);
            }
            cur = copy.child_for(key)?.node;
        }
    }

    /// Find `key` by root navigation.
    pub fn find(&self, key: Key) -> Option<u64> {
        let path = self.path_to(key)?;
        let leaf = self.authoritative(*path.last()?)?;
        leaf.entries.get(&key).and_then(Entry::value)
    }

    /// Distinct nodes per level.
    pub fn nodes_per_level(&self) -> BTreeMap<u8, usize> {
        let mut out = BTreeMap::new();
        for copy in self.copies.values().filter_map(|v| v.first()) {
            *out.entry(copy.1.level).or_insert(0) += 1;
        }
        out
    }

    /// Copies per level (for the Fig 2 replication-factor experiment).
    pub fn copies_per_level(&self) -> BTreeMap<u8, usize> {
        let mut out = BTreeMap::new();
        for list in self.copies.values() {
            if let Some((_, c)) = list.first() {
                *out.entry(c.level).or_insert(0) += list.len();
            }
        }
        out
    }

    /// Mean fill factor of nodes at `level`: live entries over the fanout
    /// implied by the fullest node seen. The paper's \[11\] result is that
    /// never-merging loses little utilization; this is the metric.
    pub fn utilization(&self, level: u8) -> f64 {
        let nodes: Vec<&NodeCopy> = self
            .copies
            .values()
            .filter_map(|v| v.first().map(|(_, c)| *c))
            .filter(|c| c.level == level)
            .collect();
        if nodes.is_empty() {
            return 0.0;
        }
        let cap = nodes
            .iter()
            .map(|c| c.entries.len())
            .max()
            .unwrap_or(1)
            .max(1);
        let total: usize = nodes.iter().map(|c| c.entries.len()).sum();
        total as f64 / (cap * nodes.len()) as f64
    }
}

/// Check value convergence of every replicated node.
pub fn check_convergence(sim: &DbSim) -> Vec<TreeViolation> {
    let view = GlobalView::new(sim);
    let mut out = Vec::new();
    for (node, list) in &view.copies {
        if list.len() < 2 {
            continue;
        }
        let digests: BTreeSet<u64> = list.iter().map(|(_, c)| c.digest()).collect();
        if digests.len() > 1 {
            out.push(TreeViolation::Diverged {
                node: *node,
                digests: digests.into_iter().collect(),
            });
        }
    }
    out
}

/// Check that every key in `expected` is findable by root navigation.
pub fn check_keys(sim: &DbSim, expected: &BTreeSet<Key>) -> Vec<TreeViolation> {
    let view = GlobalView::new(sim);
    expected
        .iter()
        .filter(|&&k| view.find(k).is_none())
        .map(|&key| TreeViolation::KeyLost { key })
        .collect()
}

/// Check that no key in `deleted` is findable by root navigation: its
/// tombstone (or the absence left by a retired leaf) must shadow every
/// older value. The complement of [`check_keys`], and the check an unsafe
/// merge commit fails — dropping a leaf without re-verifying emptiness
/// discards tombstones, resurrecting the values they shadowed elsewhere.
pub fn check_deleted_keys(sim: &DbSim, deleted: &BTreeSet<Key>) -> Vec<TreeViolation> {
    let view = GlobalView::new(sim);
    deleted
        .iter()
        .filter(|&&k| view.find(k).is_some())
        .map(|&key| TreeViolation::DeletedKeyVisible { key })
        .collect()
}

/// Check the level-0 chain tiles `[0, +∞)`.
pub fn check_leaf_chain(sim: &DbSim) -> Vec<TreeViolation> {
    let view = GlobalView::new(sim);
    let mut leaves: Vec<&NodeCopy> = view
        .copies
        .values()
        .filter_map(|v| v.first().map(|(_, c)| *c))
        .filter(|c| c.is_leaf())
        .collect();
    leaves.sort_by_key(|c| c.range.low);
    let mut out = Vec::new();
    if leaves.is_empty() {
        out.push(TreeViolation::BrokenLeafChain {
            detail: "no leaves".into(),
        });
        return out;
    }
    if leaves[0].range.low != 0 {
        out.push(TreeViolation::BrokenLeafChain {
            detail: format!("chain starts at {}", leaves[0].range.low),
        });
    }
    for w in leaves.windows(2) {
        if w[0].range.high != Some(w[1].range.low) {
            out.push(TreeViolation::BrokenLeafChain {
                detail: format!(
                    "{:?} ends at {:?} but {:?} starts at {}",
                    w[0].id, w[0].range.high, w[1].id, w[1].range.low
                ),
            });
        }
        // The right link must point at the actual successor.
        match w[0].right {
            Some(link) if link.node == w[1].id => {}
            other => out.push(TreeViolation::BrokenLeafChain {
                detail: format!(
                    "{:?} right link {:?} != successor {:?}",
                    w[0].id,
                    other.map(|l| l.node),
                    w[1].id
                ),
            }),
        }
    }
    if leaves.last().expect("nonempty").range.high.is_some() {
        out.push(TreeViolation::BrokenLeafChain {
            detail: "chain does not end at +inf".into(),
        });
    }
    out
}

/// Check the dB-tree path-replication property (Fig 2): every processor that
/// owns a leaf holds a copy of each node on the root-to-leaf path.
pub fn check_path_property(sim: &DbSim) -> Vec<TreeViolation> {
    let view = GlobalView::new(sim);
    let mut out = Vec::new();
    for (pid, proc) in sim.procs() {
        for leaf in proc.store.iter().filter(|c| c.is_leaf()) {
            let Some(path) = view.path_to(leaf.range.low) else {
                continue;
            };
            for node in &path[..path.len().saturating_sub(1)] {
                if !proc.store.contains(*node) {
                    out.push(TreeViolation::PathPropertyBroken {
                        proc: pid,
                        leaf: leaf.id,
                        missing: *node,
                    });
                }
            }
        }
    }
    out
}

/// Check for dangling stashes at quiescence.
pub fn check_stashes(sim: &DbSim) -> Vec<TreeViolation> {
    let mut out = Vec::new();
    for (pid, proc) in sim.procs() {
        for (node, events) in &proc.stash_view() {
            out.push(TreeViolation::DanglingStash {
                proc: pid,
                node: *node,
                count: *events,
            });
        }
    }
    out
}

/// The dB-tree's class-level conflict relation, transcribing §4.1 onto the
/// update classes the protocols issue and onto what the sequence oracle
/// can observe (pairs that were **applied** at two copies):
///
/// * rule 2 — half-splits never commute with each other: the right-link
///   and range depend on application order, so `"split"` vs `"split"`
///   always conflicts. This is the claim that splits of one node are
///   serialized through its PC. The same holds for `"absorb"` (the merge
///   family's structural action) against itself and against `"split"`:
///   both rewrite the same right-link/bound state, so any structural pair
///   is ordered — which the absorb epoch enforces at every copy.
/// * rules 1, 3 & 4 — lazy writes (leaf writes, child insertions,
///   child-home updates, directory patches) commute with each other in any
///   form, and with a half-split *as applied pairs*: the non-commuting
///   insert/split case of §4.1 is an insert whose key the split moved
///   away, and the protocols never leave such a pair applied on both
///   copies — the late relay is discarded or re-routed ("rewriting
///   history"), which the coverage and value checks judge instead. A pair
///   applied under both orders was in range under both orders, and such
///   writes commute. An absorb against a leaf write commutes for the same
///   applied-pairs reason: a write applied on both sides of an absorb was
///   in range on both sides (the absorb only *widens* the range), and
///   entry-wise the absorb is itself a batch of LWW upserts.
/// * link-changes form the ordered class (checked by version monotonicity,
///   not pairwise), and join/unjoin are replication-set bookkeeping — both
///   commute with everything here.
pub fn db_class_conflicts(a: SeqAction, b: SeqAction) -> bool {
    let structural = |x: SeqAction| x.class == "split" || x.class == "absorb";
    structural(a) && structural(b)
}

/// Run the history sequence oracle (completeness, commuting-reorders-only
/// compatibility, orderedness — see [`history::oracle`]) over a finished
/// log, under the dB-tree conflict relation.
pub fn check_history_sequences(log: &HistoryLog) -> Vec<TreeViolation> {
    check_sequences(log, &db_class_conflicts)
        .into_iter()
        .map(|v| TreeViolation::History {
            detail: v.to_string(),
        })
        .collect()
}

/// Run every structural check plus the history log.
pub fn check_all(
    cluster: &mut crate::tree::DbCluster,
    expected_keys: &BTreeSet<Key>,
) -> Vec<TreeViolation> {
    cluster.record_final_digests();
    let mut out = Vec::new();
    out.extend(check_convergence(&cluster.sim));
    out.extend(check_keys(&cluster.sim, expected_keys));
    out.extend(check_leaf_chain(&cluster.sim));
    out.extend(check_stashes(&cluster.sim));
    let log = cluster.log();
    let log = log.lock();
    let violations = log.check();
    out.extend(violations.into_iter().map(|v| TreeViolation::History {
        detail: v.to_string(),
    }));
    out.extend(check_history_sequences(&log));
    out
}

impl DbProc {
    /// (node → stashed event count), for the quiescence checker.
    pub fn stash_view(&self) -> BTreeMap<NodeId, usize> {
        self.stash_sizes()
    }
}
