//! # dbtree — lazy updates for a distributed B-link tree
//!
//! A from-scratch implementation of the dB-tree of Johnson & Krishna,
//! *Lazy Updates for Distributed Search Structures* (1992/93): a distributed
//! B-link tree whose interior nodes are replicated — the root everywhere,
//! leaves on one processor — and maintained with **lazy updates**, protocols
//! that exploit action commutativity to keep copies coherent without
//! synchronization.
//!
//! ## What's here
//!
//! * The dB-tree itself ([`DbCluster`]), running over the deterministic
//!   message-passing simulator in the `simnet` crate.
//! * The full protocol family:
//!   [`ProtocolKind::Sync`] (§4.1.1 AAS splits),
//!   [`ProtocolKind::SemiSync`] (§4.1.2 history-rewriting splits — the
//!   paper's headline protocol),
//!   [`ProtocolKind::Naive`] (the Fig 4 lost-insert strawman),
//!   [`ProtocolKind::AvailableCopies`] (the vigorous baseline), plus
//!   §4.2 single-copy mobile nodes (migration, forwarding addresses,
//!   misnavigation recovery) and §4.3 variable copies (join/unjoin with
//!   version numbers).
//! * End-of-run checkers ([`checker`]) and a bridge to the `history` crate's
//!   executable correctness theory.
//!
//! ## Quickstart
//!
//! ```
//! use dbtree::{BuildSpec, ClientOp, DbCluster, Intent, TreeConfig};
//! use simnet::{ProcId, SimConfig};
//!
//! // 4 processors, path-replicated dB-tree preloaded with 100 keys.
//! let spec = BuildSpec::new((0..100).map(|k| k * 2).collect(), 4, TreeConfig::default());
//! let mut cluster = DbCluster::build(&spec, SimConfig::seeded(42));
//!
//! // Insert a key from processor 3...
//! cluster.submit(ClientOp { origin: ProcId(3), key: 33, intent: Intent::Insert(330) });
//! cluster.run_to_quiescence();
//! // ...then search it from processor 0.
//! cluster.submit(ClientOp { origin: ProcId(0), key: 33, intent: Intent::Search });
//! let records = cluster.run_to_quiescence();
//! assert_eq!(records[0].outcome.found, Some(330));
//! ```

#![warn(missing_docs)]

pub mod balance;
mod build;
pub mod checker;
mod config;
mod metrics;
mod msg;
mod nav;
mod node;
mod proc;
mod protocol;
mod recovery;
mod relay;
mod store;
mod tree;
mod types;

pub use build::{build_procs, BuildSpec};
pub use checker::{check_history_sequences, db_class_conflicts, GlobalView, TreeViolation};
pub use config::{PiggybackCfg, Placement, ProtocolKind, TreeConfig};
pub use metrics::ProcMetrics;
pub use msg::{InstallReason, LinkDir, Msg, SplitInfo};
pub use node::{NodeCopy, NodeSnapshot};
pub use proc::DbProc;
pub use simnet::{OpenLoopCfg, QuiesceError, Runtime};
pub use store::NodeStore;
pub use tree::{
    record_final_digests_from, ClientOp, DbCluster, DbProtocol, DbSim, DbSubmission, DriverStats,
    OpRecord, ScanRecord, ScanSpec, ThreadedDbCluster, ThreadedDbRuntime,
};
pub use types::{
    ChildRef, Entry, Intent, Key, KeyRange, Link, NodeId, OpId, Outcome, Stamp, Value,
};
