//! Navigation and the client-plane actions: descents, leaf operations, and
//! the generic initial-insert action (`InsertAt`).
//!
//! These are the straightforward distributed translations of the B-link tree
//! actions: every action is local to one node copy, misnavigation recovers
//! through the right link, and updates never block searches.

use simnet::{Context, ProcId};

use crate::config::ProtocolKind;
use crate::msg::Msg;
use crate::proc::{CoordOp, DbProc, ReplyInfo};
use crate::types::{Entry, Intent, Key, NodeId, OpId, Outcome};

/// Entries a scan may still collect: `limit` minus what is already
/// accumulated, saturating at zero. The right-link continuation re-sends the
/// *original* limit with a pre-filled accumulator, so `collected` can equal
/// (or, with a duplicated continuation, exceed) `limit` — plain subtraction
/// would wrap.
pub(crate) fn scan_budget(limit: u32, collected: usize) -> usize {
    (limit as usize).saturating_sub(collected)
}

impl DbProc {
    /// A client operation arrives at its origin processor: start descending
    /// from the local root.
    pub(crate) fn handle_client(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        op: OpId,
        key: Key,
        intent: Intent,
    ) {
        match self.store.root() {
            Some(root) => {
                let msg = Msg::Descend {
                    op,
                    key,
                    intent,
                    node: root,
                    hops: 0,
                    chases: 0,
                };
                let home = self.store.root_home().unwrap_or(self.me);
                self.send_to_node(ctx, root, home, msg);
            }
            None => {
                // No tree yet — should not happen after bootstrap.
                self.reply(
                    ctx,
                    Outcome {
                        op,
                        found: None,
                        hops: 0,
                        chases: 0,
                    },
                );
            }
        }
    }

    /// One descent action at one node copy.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_descend(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        op: OpId,
        key: Key,
        intent: Intent,
        node: NodeId,
        hops: u32,
        chases: u32,
    ) {
        let remake = |hops, chases| Msg::Descend {
            op,
            key,
            intent,
            node,
            hops,
            chases,
        };
        let Some(copy) = self.store.get(node) else {
            let msg = remake(hops, chases);
            self.recover_missing_node(ctx, node, key, msg);
            return;
        };

        // Available-copies: actions queue behind a locked copy.
        if copy.lock.is_some() {
            let msg = remake(hops, chases);
            self.queue_behind_lock(ctx, node, msg);
            return;
        }

        if copy.range.is_right_of(key) {
            let Some(right) = copy.right else {
                // A copy claiming the key is beyond its range with no right
                // link is stale (a zombie outliving a retirement it has not
                // heard about): restart from the root instead of panicking.
                self.restart_at_root(ctx, |root| Msg::Descend {
                    op,
                    key,
                    intent,
                    node: root,
                    hops: hops + 1,
                    chases: chases + 1,
                });
                return;
            };
            self.metrics.link_chases += 1;
            let msg = Msg::Descend {
                op,
                key,
                intent,
                node: right.node,
                hops: hops + 1,
                chases: chases + 1,
            };
            self.send_to_node(ctx, right.node, right.home, msg);
            return;
        }

        if copy.range.is_left_of(key) {
            // Possible after a missing-node restart from an arbitrary local
            // node: move left/up toward the key.
            let target = copy.left.or(copy.parent);
            match target {
                Some(link) => {
                    self.metrics.link_chases += 1;
                    let msg = Msg::Descend {
                        op,
                        key,
                        intent,
                        node: link.node,
                        hops: hops + 1,
                        chases: chases + 1,
                    };
                    self.send_to_node(ctx, link.node, link.home, msg);
                }
                None => {
                    // At the root with key left of range: impossible (root
                    // covers [0, +inf)); defensively restart at the root.
                    let msg = remake(hops + 1, chases + 1);
                    let home = self.store.root_home().unwrap_or(self.me);
                    ctx.send(home, msg);
                }
            }
            return;
        }

        if !copy.is_leaf() {
            let Some(child) = copy.child_for(key) else {
                // Every in-range key has a live floor child on a converged
                // interior copy (the leftmost child is never retired);
                // transient staleness restarts from the root.
                self.restart_at_root(ctx, |root| Msg::Descend {
                    op,
                    key,
                    intent,
                    node: root,
                    hops: hops + 1,
                    chases: chases + 1,
                });
                return;
            };
            let msg = Msg::Descend {
                op,
                key,
                intent,
                node: child.node,
                hops: hops + 1,
                chases,
            };
            self.send_to_node(ctx, child.node, child.home, msg);
            return;
        }

        // At the leaf: perform the operation.
        match intent {
            Intent::Search => {
                let found = copy.get_value(key);
                self.reply(
                    ctx,
                    Outcome {
                        op,
                        found,
                        hops: hops + 1,
                        chases,
                    },
                );
            }
            Intent::Insert(_) | Intent::Delete => {
                self.leaf_write(ctx, node, op, key, intent, hops + 1, chases);
            }
        }
    }

    /// Perform a client write (insert or tombstone delete) at a leaf copy —
    /// an *initial* update action in the paper's sense.
    #[allow(clippy::too_many_arguments)]
    fn leaf_write(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        node: NodeId,
        op: OpId,
        key: Key,
        intent: Intent,
        hops: u32,
        chases: u32,
    ) {
        if self.cfg.merge_wedge_grants && self.merge_pending.contains(&node) {
            // Seeded livelock (`merge_wedge_grants`): a merge is pending on
            // this leaf and the grant will never come, so the write parks
            // forever — the client op never completes. The liveness oracle
            // counts these through `DbProc::parked_write_count`.
            self.parked_since.push(ctx.now().ticks());
            self.parked_writes.push(Msg::Descend {
                op,
                key,
                intent,
                node,
                hops,
                chases,
            });
            return;
        }
        let copy = self.store.get(node).expect("checked by caller");
        let replicated = copy.copies.len() > 1;
        let pc = copy.pc;
        let stamp = self.next_stamp();
        let entry = match intent {
            Intent::Insert(value) => Entry::Val { value, stamp },
            Intent::Delete => Entry::Tomb { stamp },
            Intent::Search => unreachable!("writes only"),
        };

        if self.cfg.protocol == ProtocolKind::AvailableCopies && replicated {
            if self.me != pc {
                // Writes go through the coordinator.
                ctx.send(
                    pc,
                    Msg::Descend {
                        op,
                        key,
                        intent,
                        node,
                        hops: hops + 1,
                        chases,
                    },
                );
                return;
            }
            let tag = self.issue_tag("leaf-write");
            self.coordinate(
                ctx,
                node,
                CoordOp::Insert {
                    key,
                    entry,
                    tag,
                    reply: Some(ReplyInfo { op, hops, chases }),
                },
            );
            return;
        }

        // Sync protocol: the AAS blocks *initial* inserts.
        if self.block_if_aas(
            ctx,
            node,
            Msg::Descend {
                op,
                key,
                intent,
                node,
                hops,
                chases,
            },
        ) {
            return;
        }

        let copy = self.store.get_mut(node).expect("checked above");
        let version = copy.version;
        let prev = copy.upsert(key, entry);
        let tag = self.issue_tag("leaf-write");
        self.log.lock().observe_initial(node.raw(), self.me.0, tag);
        self.relay_update(ctx, node, key, entry, tag, version);
        self.reply(
            ctx,
            Outcome {
                op,
                found: prev.and_then(|e| e.value()),
                hops,
                chases,
            },
        );
        self.maybe_split(ctx, node);
        self.maybe_merge(ctx, node);
    }

    /// The generic initial insert action: split completions arriving at
    /// parents, and semisync re-issues. Routes right when out of range and
    /// descends when the hinted node is above the target level (the `node`
    /// field is only a hint — `key` + `level` fully address the action).
    pub(crate) fn handle_insert_at(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        node: NodeId,
        level: u8,
        key: Key,
        entry: Entry,
        tag: u64,
    ) {
        let remake = || Msg::InsertAt {
            node,
            level,
            key,
            entry,
            tag,
        };
        let Some(copy) = self.store.get(node) else {
            // Restart from the root: an InsertAt is fully addressed by
            // (key, level), so it can re-descend like a search.
            if let (Some(root), Some(home)) = (self.store.root(), self.store.root_home()) {
                if root != node {
                    self.metrics.missing_node_recoveries += 1;
                    let msg = Msg::InsertAt {
                        node: root,
                        level,
                        key,
                        entry,
                        tag,
                    };
                    self.send_to_node(ctx, root, home, msg);
                    return;
                }
            }
            self.recover_missing_node(ctx, node, key, remake());
            return;
        };
        if copy.lock.is_some() {
            self.queue_behind_lock(ctx, node, remake());
            return;
        }
        if copy.range.is_right_of(key) {
            let Some(right) = copy.right else {
                // Stale zombie copy (see `handle_descend`): re-descend by
                // (key, level) from the root.
                self.restart_at_root(ctx, |root| Msg::InsertAt {
                    node: root,
                    level,
                    key,
                    entry,
                    tag,
                });
                return;
            };
            self.metrics.link_chases += 1;
            let msg = Msg::InsertAt {
                node: right.node,
                level,
                key,
                entry,
                tag,
            };
            self.send_to_node(ctx, right.node, right.home, msg);
            return;
        }
        debug_assert!(
            !copy.range.is_left_of(key),
            "InsertAt routed left of its target range"
        );
        if copy.level > level {
            // Stale hint above the target: descend toward the right level.
            let Some(child) = copy.child_for(key) else {
                self.restart_at_root(ctx, |root| Msg::InsertAt {
                    node: root,
                    level,
                    key,
                    entry,
                    tag,
                });
                return;
            };
            let msg = Msg::InsertAt {
                node: child.node,
                level,
                key,
                entry,
                tag,
            };
            self.send_to_node(ctx, child.node, child.home, msg);
            return;
        }
        debug_assert_eq!(copy.level, level, "InsertAt routed below its level");

        let replicated = copy.copies.len() > 1;
        let pc = copy.pc;
        if self.cfg.protocol == ProtocolKind::AvailableCopies && replicated {
            if self.me != pc {
                ctx.send(pc, remake());
                return;
            }
            self.coordinate(
                ctx,
                node,
                CoordOp::Insert {
                    key,
                    entry,
                    tag,
                    reply: None,
                },
            );
            return;
        }

        if self.block_if_aas(ctx, node, remake()) {
            return;
        }

        let copy = self.store.get_mut(node).expect("checked above");
        let version = copy.version;
        copy.upsert(key, entry);
        self.log.lock().observe_initial(node.raw(), self.me.0, tag);
        self.relay_update(ctx, node, key, entry, tag, version);
        self.maybe_split(ctx, node);
        // Rerouted deletes land here as initial inserts; a tombstone may
        // have emptied the leaf (no-op on interior nodes).
        self.maybe_merge(ctx, node);
    }

    /// If the copy is mid-AAS and this is an initial insert, block it.
    /// Returns `true` if blocked.
    pub(crate) fn block_if_aas(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        node: NodeId,
        msg: Msg,
    ) -> bool {
        let now = ctx.now().ticks();
        let Some(copy) = self.store.get_mut(node) else {
            return false;
        };
        if let Some(aas) = copy.aas.as_mut() {
            aas.blocked.push((now, msg));
            self.metrics.blocked_initial += 1;
            true
        } else {
            false
        }
    }

    /// Queue an action behind an available-copies lock. The `ctx` is unused
    /// but kept so call sites read uniformly.
    pub(crate) fn queue_behind_lock(&mut self, ctx: &mut Context<'_, Msg>, node: NodeId, msg: Msg) {
        let now = ctx.now().ticks();
        let copy = self.store.get_mut(node).expect("locked copy exists");
        copy.lock
            .as_mut()
            .expect("caller checked lock")
            .queued
            .push((now, msg));
        self.metrics.lock_queued += 1;
    }

    /// Split the node if it is overfull and this processor may initiate the
    /// split (it is the PC and no split is already in flight).
    pub(crate) fn maybe_split(&mut self, ctx: &mut Context<'_, Msg>, node: NodeId) {
        let Some(copy) = self.store.get_mut(node) else {
            return;
        };
        if !copy.overfull(self.cfg.fanout) {
            return;
        }
        if !copy.is_leaf()
            && copy
                .entries
                .values()
                .filter(|e| e.child().is_some())
                .count()
                < 2
        {
            // Overfull only because retired children left tombstones:
            // separators must be live child keys, so there is nothing to
            // split around. Tolerate the overflow like a non-PC copy does.
            return;
        }
        if copy.pc != self.me {
            // Non-PC copies tolerate overflow (an implicit overflow bucket);
            // the PC will split once the relays reach it.
            return;
        }
        match self.cfg.protocol {
            ProtocolKind::Sync => self.start_sync_split(ctx, node),
            ProtocolKind::SemiSync | ProtocolKind::Naive => self.semisync_split(ctx, node),
            ProtocolKind::AvailableCopies => {
                let replicated = self
                    .store
                    .get(node)
                    .map(|c| c.copies.len() > 1)
                    .unwrap_or(false);
                if replicated {
                    self.coordinate(ctx, node, CoordOp::Split);
                } else {
                    // Sole copy: no lock needed.
                    self.semisync_split(ctx, node);
                }
            }
        }
    }

    /// §4.2 missing-node recovery: the message names a node this processor
    /// doesn't store. Follow a forwarding address if one exists, otherwise
    /// restart at the closest local node, otherwise punt to the root's home.
    pub(crate) fn recover_missing_node(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        node: NodeId,
        key: Key,
        msg: Msg,
    ) {
        if let Some(fwd) = self.store.forward_for(node) {
            // A forward pointing at this processor (a retirement we
            // performed: the forward aims at the absorber's *home*, which
            // may be us) must fall through to a key-based restart, or the
            // message would loop back here forever.
            if fwd.to != self.me {
                self.metrics.forwards_followed += 1;
                ctx.send(fwd.to, msg);
                return;
            }
        }
        self.metrics.missing_node_recoveries += 1;
        match self.store.closest_for(key) {
            Some(local) if local != node => {
                // Restart the action at a close local node: rewrite the
                // target. Only navigable actions can restart; others are
                // re-addressed to the root's home.
                match msg {
                    Msg::Descend {
                        op,
                        key,
                        intent,
                        hops,
                        chases,
                        ..
                    } => ctx.send(
                        self.me,
                        Msg::Descend {
                            op,
                            key,
                            intent,
                            node: local,
                            hops: hops + 1,
                            chases: chases + 1,
                        },
                    ),
                    Msg::Scan {
                        op,
                        key,
                        remaining,
                        acc,
                        hops,
                        ..
                    } => ctx.send(
                        self.me,
                        Msg::Scan {
                            op,
                            key,
                            remaining,
                            node: local,
                            acc,
                            hops: hops + 1,
                        },
                    ),
                    // An absorb is fully addressed by `info.low` (it targets
                    // the leaf owning `low - 1`); restart it locally too.
                    Msg::Absorb { info, .. } => {
                        ctx.send(self.me, Msg::Absorb { node: local, info })
                    }
                    other => {
                        let home = self.store.root_home().unwrap_or(self.me);
                        if home == self.me {
                            // We are the root's home and the action is not
                            // key-restartable: drop rather than self-loop.
                            return;
                        }
                        ctx.send(home, other);
                    }
                }
            }
            _ => {
                let home = self.store.root_home().unwrap_or(ProcId(0));
                if home == self.me {
                    // Nothing local to restart from and we *are* the root
                    // home: drop to avoid a self-loop (can only happen on an
                    // empty store, i.e. before bootstrap).
                    return;
                }
                ctx.send(home, msg);
            }
        }
    }

    /// Defensive restart for a navigable action whose local copy is too
    /// stale to route it (a zombie surviving a retirement it has not heard
    /// about): re-address it to the root. Drops the action only when there
    /// is no root at all (pre-bootstrap).
    pub(crate) fn restart_at_root(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        rewrite: impl FnOnce(NodeId) -> Msg,
    ) {
        self.metrics.missing_node_recoveries += 1;
        let Some(root) = self.store.root() else {
            return;
        };
        let home = self.store.root_home().unwrap_or(self.me);
        let msg = rewrite(root);
        self.send_to_node(ctx, root, home, msg);
    }
}

impl DbProc {
    /// Start a range scan at the local root.
    pub(crate) fn handle_client_scan(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        op: OpId,
        from: Key,
        limit: u32,
    ) {
        match self.store.root() {
            Some(root) => {
                let msg = Msg::Scan {
                    op,
                    key: from,
                    remaining: limit,
                    node: root,
                    acc: Vec::new(),
                    hops: 0,
                };
                let home = self.store.root_home().unwrap_or(self.me);
                self.send_to_node(ctx, root, home, msg);
            }
            None => ctx.send(
                ProcId::EXTERNAL,
                Msg::ScanResult {
                    op,
                    items: Vec::new(),
                    hops: 0,
                },
            ),
        }
    }

    /// One scan step: descend to the leaf holding `key`, harvest its live
    /// entries, and continue along the right link until `remaining` entries
    /// are collected or the chain ends.
    ///
    /// Scans are pure read actions: like searches, they are never blocked by
    /// lazy updates — a half-split mid-scan is absorbed by the right link
    /// (the sibling holds the moved entries, and the link leads there).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_scan(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        op: OpId,
        key: Key,
        remaining: u32,
        node: NodeId,
        mut acc: Vec<(Key, crate::types::Value)>,
        hops: u32,
    ) {
        let remake = |acc: Vec<(Key, crate::types::Value)>, hops| Msg::Scan {
            op,
            key,
            remaining,
            node,
            acc,
            hops,
        };
        let Some(copy) = self.store.get(node) else {
            let msg = remake(acc, hops);
            self.recover_missing_node(ctx, node, key, msg);
            return;
        };
        if copy.lock.is_some() {
            let msg = remake(acc, hops);
            self.queue_behind_lock(ctx, node, msg);
            return;
        }
        if copy.range.is_right_of(key) {
            let Some(right) = copy.right else {
                // Stale zombie copy (see `handle_descend`): a merge retired
                // this node's neighbourhood out from under it. Restart from
                // the root — scans are addressed by `key` like searches.
                self.restart_at_root(ctx, |root| Msg::Scan {
                    op,
                    key,
                    remaining,
                    node: root,
                    acc,
                    hops: hops + 1,
                });
                return;
            };
            self.metrics.link_chases += 1;
            let msg = Msg::Scan {
                op,
                key,
                remaining,
                node: right.node,
                acc,
                hops: hops + 1,
            };
            self.send_to_node(ctx, right.node, right.home, msg);
            return;
        }
        if copy.range.is_left_of(key) {
            let target = copy.left.or(copy.parent);
            if let Some(link) = target {
                self.metrics.link_chases += 1;
                let msg = Msg::Scan {
                    op,
                    key,
                    remaining,
                    node: link.node,
                    acc,
                    hops: hops + 1,
                };
                self.send_to_node(ctx, link.node, link.home, msg);
            } else {
                let home = self.store.root_home().unwrap_or(self.me);
                ctx.send(home, remake(acc, hops + 1));
            }
            return;
        }
        if !copy.is_leaf() {
            let Some(child) = copy.child_for(key) else {
                // Same audit as the right-link chase above: a retired-child
                // tombstone should always have a live child to its left, but
                // a stale copy restarts from the root instead of panicking.
                self.restart_at_root(ctx, |root| Msg::Scan {
                    op,
                    key,
                    remaining,
                    node: root,
                    acc,
                    hops: hops + 1,
                });
                return;
            };
            let msg = Msg::Scan {
                op,
                key,
                remaining,
                node: child.node,
                acc,
                hops: hops + 1,
            };
            self.send_to_node(ctx, child.node, child.home, msg);
            return;
        }

        // At the right leaf: harvest live entries from `key` onward. The
        // budget and the termination check below share one saturating
        // helper — the continuation re-sends the original `remaining` with
        // a pre-filled `acc`, so the two must agree at the boundary.
        let mut left = scan_budget(remaining, acc.len());
        for (&k, e) in copy.entries.range(key..) {
            if left == 0 {
                break;
            }
            if let Some(v) = e.value() {
                acc.push((k, v));
                left -= 1;
            }
        }
        let next = copy.right;
        let next_low = copy.range.high;
        if scan_budget(remaining, acc.len()) == 0 || next.is_none() || next_low.is_none() {
            ctx.send(
                ProcId::EXTERNAL,
                Msg::ScanResult {
                    op,
                    items: acc,
                    hops: hops + 1,
                },
            );
            return;
        }
        let right = next.expect("checked");
        let msg = Msg::Scan {
            op,
            key: next_low.expect("checked"),
            remaining,
            node: right.node,
            acc,
            hops: hops + 1,
        };
        self.send_to_node(ctx, right.node, right.home, msg);
    }
}

#[cfg(test)]
mod tests {
    // Navigation is exercised end-to-end through the cluster tests in
    // `tree.rs` and the integration suite; unit tests here cover the
    // smallest routable pieces via the public build/run API.
    use super::scan_budget;

    #[test]
    fn scan_budget_saturates_at_the_limit_boundary() {
        assert_eq!(scan_budget(5, 0), 5);
        assert_eq!(scan_budget(5, 3), 2);
        // The continuation re-sends the original limit with a full
        // accumulator: exactly at the boundary the budget is zero...
        assert_eq!(scan_budget(5, 5), 0);
        // ...and a duplicated continuation that overshot must not wrap.
        assert_eq!(scan_budget(5, 6), 0);
        assert_eq!(scan_budget(0, 0), 0);
    }
}
