//! Core identifier and entry types.

use std::fmt;

use simnet::ProcId;

pub use blink::{Key, KeyRange};

/// Values stored at the leaves.
pub type Value = u64;

/// Identifier of a *logical* node (every copy of the node shares it).
///
/// Encodes the allocating processor in the high bits so processors can mint
/// ids without coordination: `NodeId = proc << 40 | counter`.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(pub u64);

impl NodeId {
    /// Mint the `counter`-th node id of `proc`.
    pub fn mint(proc: ProcId, counter: u64) -> Self {
        debug_assert!(counter < (1 << 40), "node counter overflow");
        NodeId(((proc.0 as u64) << 40) | counter)
    }

    /// The processor that allocated this id.
    pub fn minted_by(self) -> ProcId {
        ProcId((self.0 >> 40) as u32)
    }

    /// Raw value (used as the history log's node key).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}.{}", self.0 >> 40, self.0 & ((1 << 40) - 1))
    }
}

/// Identifier of a client operation. Minted by the driver.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct OpId(pub u64);

/// A routable reference to another node: its id plus a processor known to
/// hold a copy (the copy's primary, kept fresh by link-change actions).
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct Link {
    /// The target node.
    pub node: NodeId,
    /// A processor holding a copy (normally the PC / owner).
    pub home: ProcId,
}

impl Link {
    /// Construct a link.
    pub fn new(node: NodeId, home: ProcId) -> Self {
        Link { node, home }
    }
}

/// An interior node's routing entry for one child.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct ChildRef {
    /// The child node.
    pub node: NodeId,
    /// Processor holding the child (owner for leaves, PC for interior).
    pub home: ProcId,
    /// The child's version when this reference was last refreshed. Child
    /// home changes (migrations) are an *ordered* action class: an update is
    /// applied only if its version exceeds this (§4.2 link-change rule).
    pub version: u64,
}

/// One entry in a node: a stamped value or tombstone (leaves), or a child
/// reference (interior).
///
/// Leaf entries carry a *stamp* — a totally-ordered update identifier — so
/// that concurrent writes to the same key commute: every copy keeps the
/// entry with the greatest stamp, whatever order the relays arrive in
/// (a last-writer-wins register, the natural way to extend the paper's
/// "inserts commute" rule to overwrites and deletes). Deletes are stamped
/// tombstones that shadow the key until overwritten. By default nodes they
/// empty persist (the \[11\] never-merge policy the paper adopts); with
/// [`TreeConfig::merge_at_empty`](crate::TreeConfig::merge_at_empty) an
/// all-tombstone leaf is lazily retired and its range absorbed by the left
/// sibling (the `protocol::merge` action family).
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub enum Entry {
    /// Leaf payload with its update stamp.
    Val {
        /// The stored value.
        value: Value,
        /// Total-order position of the write (see [`Stamp`]).
        stamp: u64,
    },
    /// A deleted key (lazy delete; shadows earlier writes).
    Tomb {
        /// Total-order position of the delete.
        stamp: u64,
    },
    /// Interior routing entry.
    Child(ChildRef),
}

/// Helpers for update stamps: `(per-processor counter << 8) | proc`, giving
/// a deterministic total order over all leaf updates in a run (unique for up
/// to 256 processors).
pub struct Stamp;

impl Stamp {
    /// Compose a stamp.
    #[allow(clippy::new_ret_no_self)] // Stamp is a namespace for u64 stamps
    pub fn new(counter: u64, proc: ProcId) -> u64 {
        (counter << 8) | (proc.0 as u64 & 0xFF)
    }
}

impl Entry {
    /// The child reference, if this is an interior entry.
    pub fn child(&self) -> Option<ChildRef> {
        match self {
            Entry::Child(c) => Some(*c),
            _ => None,
        }
    }

    /// The live value, if this is a (non-deleted) leaf entry.
    pub fn value(&self) -> Option<Value> {
        match self {
            Entry::Val { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// The stamp of a leaf entry (values and tombstones).
    pub fn stamp(&self) -> Option<u64> {
        match self {
            Entry::Val { stamp, .. } | Entry::Tomb { stamp } => Some(*stamp),
            Entry::Child(_) => None,
        }
    }

    /// Words contributing to the copy digest.
    pub(crate) fn digest_words(&self) -> [u64; 2] {
        match self {
            Entry::Val { value, .. } => [1, *value],
            Entry::Tomb { .. } => [3, 0],
            // Home hints and versions are routing metadata, not node value:
            // copies may transiently disagree on them without being
            // incompatible (the paper's value is the key set + links).
            Entry::Child(c) => [2, c.node.raw()],
        }
    }
}

/// The purpose of a descent through the index.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub enum Intent {
    /// Point lookup; report the value found.
    Search,
    /// Insert `value` at the key's leaf.
    Insert(Value),
    /// Delete the key (a lazy tombstone write; nodes merge away only under
    /// the opt-in `merge_at_empty` policy, else \[11\]'s never-merge).
    Delete,
}

/// Outcome of a completed client operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct Outcome {
    /// The operation.
    pub op: OpId,
    /// For searches: the value found. For inserts: the previous value.
    pub found: Option<Value>,
    /// Nodes visited during the descent.
    pub hops: u32,
    /// Right-link chases performed (misnavigation recoveries).
    pub chases: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::mint(ProcId(7), 42);
        assert_eq!(id.minted_by(), ProcId(7));
        assert_eq!(format!("{id:?}"), "n7.42");
        assert_ne!(NodeId::mint(ProcId(0), 1), NodeId::mint(ProcId(1), 1));
    }

    #[test]
    fn entry_accessors() {
        let v = Entry::Val { value: 9, stamp: 1 };
        assert_eq!(v.value(), Some(9));
        assert_eq!(v.child(), None);
        assert_eq!(v.stamp(), Some(1));
        let t = Entry::Tomb { stamp: 2 };
        assert_eq!(t.value(), None, "tombstones shadow the key");
        assert_eq!(t.stamp(), Some(2));
        let c = Entry::Child(ChildRef {
            node: NodeId(3),
            home: ProcId(1),
            version: 0,
        });
        assert!(c.child().is_some());
        assert_eq!(c.value(), None);
        assert_eq!(c.stamp(), None);
    }

    #[test]
    fn stamps_totally_ordered_and_unique() {
        let a = Stamp::new(1, ProcId(0));
        let b = Stamp::new(1, ProcId(1));
        let c = Stamp::new(2, ProcId(0));
        assert!(a < b && b < c);
    }

    #[test]
    fn digest_ignores_home_hint() {
        let a = Entry::Child(ChildRef {
            node: NodeId(3),
            home: ProcId(1),
            version: 0,
        });
        let b = Entry::Child(ChildRef {
            node: NodeId(3),
            home: ProcId(2),
            version: 5,
        });
        assert_eq!(a.digest_words(), b.digest_words());
    }
}
