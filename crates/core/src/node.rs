//! A replicated node copy and its local (atomic) mutations.

use std::collections::BTreeMap;

use history::fnv1a;
use simnet::ProcId;

use crate::msg::{AbsorbInfo, Msg, SplitInfo};
use crate::types::{ChildRef, Entry, Key, KeyRange, Link, NodeId};

/// State of an executing split AAS on this copy (§4.1.1).
#[derive(Clone, Debug, Default)]
pub struct AasState {
    /// PC only: acknowledgements still outstanding.
    pub acks_pending: usize,
    /// Initial insert actions blocked by the AAS, with the tick they were
    /// blocked at; replayed at `split_end`.
    pub blocked: Vec<(u64, Msg)>,
}

/// State of an available-copies lock on this copy.
#[derive(Clone, Debug, Default)]
pub struct LockState {
    /// Actions (searches *and* updates) queued while locked, with the tick
    /// they were queued at.
    pub queued: Vec<(u64, Msg)>,
}

/// Total order over entries for the anti-entropy merge: last-writer-wins on
/// the stamp for leaf entries (matching [`NodeCopy::upsert`], whose stamps
/// are globally unique), child version for routing entries, with the payload
/// as a tie-break so the maximum is well-defined on *any* pair — that
/// totality is what makes [`NodeCopy::merge_from`] order-independent.
fn entry_rank(e: &Entry) -> (u64, u8, u64, u64) {
    match e {
        Entry::Val { value, stamp } => (*stamp, 1, *value, 0),
        Entry::Tomb { stamp } => (*stamp, 3, 0, 0),
        Entry::Child(c) => (c.version, 2, c.node.raw(), c.home.0 as u64),
    }
}

/// Total order over optional links for the merge (`None` sorts lowest).
fn link_rank(l: Option<Link>) -> (u8, u64, u64) {
    match l {
        None => (0, 0, 0),
        Some(l) => (1, l.node.raw(), l.home.0 as u64),
    }
}

/// One physical copy of a logical node.
#[derive(Clone, Debug)]
pub struct NodeCopy {
    /// The logical node this copy replicates.
    pub id: NodeId,
    /// Distance to leaves (leaf = 0).
    pub level: u8,
    /// The node's key range.
    pub range: KeyRange,
    /// §4.2/§4.3 version number (incremented by migrations, joins, unjoins).
    pub version: u64,
    /// Sorted entries.
    pub entries: BTreeMap<Key, Entry>,
    /// Right sibling.
    pub right: Option<Link>,
    /// Left sibling (needed so splits/migrations can notify the left
    /// neighbour, §4.2/§4.3).
    pub left: Option<Link>,
    /// Parent hint (may be stale; out-of-range routing recovers).
    pub parent: Option<Link>,
    /// The node's primary copy.
    pub pc: ProcId,
    /// Known replication membership (includes self and the PC).
    pub copies: Vec<ProcId>,
    /// Per-member join version (§4.3): `join_versions[i]` is the node
    /// version at which `copies[i]` joined (0 = founding member).
    pub join_versions: Vec<u64>,
    /// Versions at which each link was last changed (ordered-action state).
    pub right_link_version: u64,
    /// See `right_link_version`.
    pub left_link_version: u64,
    /// See `right_link_version`.
    pub parent_link_version: u64,
    /// Absorb epoch: how many retired right neighbours this node has
    /// absorbed (merge-at-empty). Bumped exactly once per absorb at every
    /// copy, in the same per-copy order, which is what lets
    /// [`NodeCopy::merge_from`] order the right link/bound history even
    /// though absorbs *widen* the bound splits narrow.
    pub absorb_count: u64,
    /// Active split AAS, if any (§4.1.1).
    pub aas: Option<AasState>,
    /// A split became necessary while another was in flight.
    pub split_pending: bool,
    /// Available-copies lock, if held.
    pub lock: Option<LockState>,
}

impl NodeCopy {
    /// A fresh copy.
    pub fn new(id: NodeId, level: u8, range: KeyRange, pc: ProcId) -> Self {
        NodeCopy {
            id,
            level,
            range,
            version: 0,
            entries: BTreeMap::new(),
            right: None,
            left: None,
            parent: None,
            pc,
            copies: vec![pc],
            join_versions: vec![0],
            right_link_version: 0,
            left_link_version: 0,
            parent_link_version: 0,
            absorb_count: 0,
            aas: None,
            split_pending: false,
            lock: None,
        }
    }

    /// Is this copy a leaf?
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Replication peers other than `me`.
    pub fn peers(&self, me: ProcId) -> impl Iterator<Item = ProcId> + '_ {
        self.copies.iter().copied().filter(move |&p| p != me)
    }

    /// §4.3: members that joined strictly after `version`.
    pub fn members_joined_after(&self, version: u64) -> impl Iterator<Item = ProcId> + '_ {
        self.copies
            .iter()
            .zip(self.join_versions.iter())
            .filter(move |&(_, &jv)| jv > version)
            .map(|(&p, _)| p)
    }

    /// Register a member joining at `version`.
    pub fn add_member(&mut self, member: ProcId, version: u64) {
        if !self.copies.contains(&member) {
            self.copies.push(member);
            self.join_versions.push(version);
        }
    }

    /// Remove a member.
    pub fn remove_member(&mut self, member: ProcId) {
        if let Some(i) = self.copies.iter().position(|&p| p == member) {
            self.copies.remove(i);
            self.join_versions.remove(i);
        }
    }

    /// The child responsible for `key` (interior nodes; `key` in range).
    /// Retired children leave tombstones in interior nodes, so the floor
    /// scan walks back to the nearest *live* child entry (which then covers
    /// the retired child's range, having absorbed it).
    pub fn child_for(&self, key: Key) -> Option<ChildRef> {
        debug_assert!(!self.is_leaf());
        self.entries
            .range(..=key)
            .rev()
            .find_map(|(_, e)| e.child())
    }

    /// Does the copy need to split? Tombstones don't count: they route
    /// nothing and hold no payload, so splitting around them would recreate
    /// the very nodes merge-at-empty reclaims (an absorber inherits the
    /// retired leaf's tombstones and would immediately re-split).
    pub fn overfull(&self, fanout: usize) -> bool {
        self.entries
            .values()
            .filter(|e| !matches!(e, Entry::Tomb { .. }))
            .count()
            > fanout
    }

    /// Perform the local half of a half-split: keep `[low, sep)`, return the
    /// sibling's range and entries. `right`/`version` bookkeeping is the
    /// caller's (protocol-specific).
    pub fn half_split(&mut self) -> (Key, KeyRange, BTreeMap<Key, Entry>) {
        debug_assert!(self.entries.len() >= 2);
        // Leaves may split at any key; an interior separator must be a
        // *live* child key (a tombstoned edge cannot route the sibling's
        // low end).
        let sep = if self.is_leaf() {
            *self
                .entries
                .keys()
                .nth(self.entries.len() / 2)
                .expect("mid key exists")
        } else {
            let live: Vec<Key> = self
                .entries
                .iter()
                .filter(|(_, e)| e.child().is_some())
                .map(|(k, _)| *k)
                .collect();
            debug_assert!(live.len() >= 2, "interior split needs two live children");
            live[live.len() / 2]
        };
        let sib_entries = self.entries.split_off(&sep);
        let (low, high) = self.range.split_at(sep);
        self.range = low;
        (sep, high, sib_entries)
    }

    /// Apply a relayed/synchronous split at a non-PC copy: shrink the range,
    /// set the right link, discard out-of-range entries. Returns the number
    /// of entries discarded.
    pub fn apply_split(&mut self, info: &SplitInfo) -> usize {
        // Splits from one PC arrive in order (one FIFO channel), but a
        // state merge ([`NodeCopy::merge_from`], crash catch-up) may have
        // narrowed the range *before* an in-flight split is finally
        // delivered. The split is then old news the merged snapshot
        // already carried — re-applying it would widen the range back.
        if !self.range.contains(info.sep) {
            debug_assert!(info.sep >= self.range.low, "split below the range");
            return 0;
        }
        self.range = KeyRange::new(self.range.low, Some(info.sep));
        self.right = Some(Link::new(info.sib, info.sib_home));
        self.right_link_version = self.right_link_version.max(info.sib_version);
        let discarded = self.entries.split_off(&info.sep);
        discarded.len()
    }

    /// Insert or merge an entry. Returns the previous entry.
    ///
    /// Every same-key conflict resolves in the single total order the
    /// anti-entropy merge uses ([`entry_rank`]): stamped leaf entries
    /// (values and tombstones) by last-writer-wins on the globally unique
    /// stamp — a stale write is history-"rewritten" before the newer one,
    /// a no-op on the value — and child entries by version. Stamps dwarf
    /// child versions, so a stamped tombstone *retires* a child edge for
    /// good: a later re-split at the same separator cannot resurrect the
    /// edge, and navigation reaches the reborn sibling through the left
    /// child's right link instead. Using one order for initial actions,
    /// relays, and state merges is what keeps copies convergent whatever
    /// order updates arrive in.
    pub fn upsert(&mut self, key: Key, entry: Entry) -> Option<Entry> {
        debug_assert!(self.range.contains(key), "upsert out of range");
        match self.entries.get(&key) {
            Some(old) => {
                let prev = Some(*old);
                if entry_rank(&entry) > entry_rank(old) {
                    self.entries.insert(key, entry);
                }
                prev
            }
            None => self.entries.insert(key, entry),
        }
    }

    /// Apply an absorb (the reverse of [`NodeCopy::apply_split`]): extend
    /// the range and right link over a retired right neighbour's, and take
    /// over its residual tombstones. Entries join in the LWW order, so a
    /// racing re-insert that already landed here is not clobbered by an
    /// older tombstone riding the absorb.
    pub fn apply_absorb(&mut self, info: &AbsorbInfo, count: u64) {
        debug_assert_eq!(
            self.range.high,
            Some(info.low),
            "absorb extends the adjacent range"
        );
        debug_assert_eq!(count, self.absorb_count + 1, "absorbs apply in order");
        self.range = KeyRange::new(self.range.low, info.high);
        self.right = info.right;
        self.right_link_version = self.right_link_version.max(info.right_link_version);
        self.absorb_count = count;
        for (k, e) in &info.entries {
            match self.entries.get(k) {
                Some(mine) if entry_rank(mine) >= entry_rank(e) => {}
                _ => {
                    self.entries.insert(*k, *e);
                }
            }
        }
    }

    /// A leaf's live (non-tombstone) value for `key`.
    pub fn get_value(&self, key: Key) -> Option<crate::types::Value> {
        self.entries.get(&key).and_then(Entry::value)
    }

    /// The copy's value digest: level, range, entry keys+payloads, and the
    /// right-link target. Copies of a node are *compatible* when these agree
    /// at the end of the computation.
    pub fn digest(&self) -> u64 {
        let mut words: Vec<u64> = Vec::with_capacity(4 + self.entries.len() * 3);
        words.push(self.level as u64);
        words.push(self.range.low);
        words.push(self.range.high.map_or(u64::MAX, |h| h ^ 0x5555));
        words.push(self.right.map_or(0, |l| l.node.raw()));
        if self.absorb_count > 0 {
            // Copies must agree on the absorb epoch too; the word is
            // omitted at zero so merge-free digests are unchanged.
            words.push(self.absorb_count ^ 0xaaaa);
        }
        for (k, e) in &self.entries {
            words.push(*k);
            words.extend(e.digest_words());
        }
        fnv1a(words)
    }

    /// Hash the copy's full protocol-visible state into `h` — the model
    /// checker's per-node state fingerprint. Unlike [`NodeCopy::digest`]
    /// (the end-of-run *value* digest), this covers every field that can
    /// influence future behavior: links and their change versions,
    /// membership, split/lock progress, and in-flight blocked messages.
    /// The wall-clock ticks stored alongside blocked/queued messages are
    /// deliberately excluded — two schedules that park the same messages at
    /// different virtual times behave identically from here on, and the
    /// fingerprint must collide for them. Membership is hashed sorted so
    /// the arrival order of joins does not leak in.
    pub fn fingerprint_into(&self, h: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        self.id.raw().hash(h);
        self.level.hash(h);
        self.range.low.hash(h);
        self.range.high.hash(h);
        self.version.hash(h);
        format!("{:?}", self.entries).hash(h);
        for link in [self.right, self.left, self.parent] {
            link_rank(link).hash(h);
        }
        self.pc.0.hash(h);
        let mut members: Vec<(u32, u64)> = self
            .copies
            .iter()
            .map(|p| p.0)
            .zip(self.join_versions.iter().copied())
            .collect();
        members.sort_unstable();
        members.hash(h);
        self.right_link_version.hash(h);
        self.left_link_version.hash(h);
        self.parent_link_version.hash(h);
        self.absorb_count.hash(h);
        self.split_pending.hash(h);
        match &self.aas {
            None => 0u8.hash(h),
            Some(aas) => {
                1u8.hash(h);
                aas.acks_pending.hash(h);
                for (_tick, msg) in &aas.blocked {
                    format!("{msg:?}").hash(h);
                }
            }
        }
        match &self.lock {
            None => 0u8.hash(h),
            Some(lock) => {
                1u8.hash(h);
                for (_tick, msg) in &lock.queued {
                    format!("{msg:?}").hash(h);
                }
            }
        }
    }

    /// State-based anti-entropy (crash catch-up): merge another copy's
    /// snapshot into this one. The merge is a join-semilattice on copy
    /// state — commutative, associative, and idempotent — so pushes and
    /// pulls may arrive in any order, any number of times, interleaved
    /// with ordinary relays, and every copy still converges:
    ///
    /// * **range** — the intersection. Splits only ever shrink a range,
    ///   and entries outside the merged range were carried away by the
    ///   split that shrank it, exactly as in [`NodeCopy::apply_split`].
    /// * **entries** — per-key maximum in the same last-writer-wins order
    ///   [`NodeCopy::upsert`] applies to relays (child entries compare by
    ///   version, with a total tie-break so merge order never matters).
    /// * **version** — maximum.
    /// * **membership** — union, keeping the greater join version per
    ///   member. A departed member resurfacing is harmless: it discards
    ///   relays addressed to it (§4.3).
    /// * **right link and upper bound** — from the copy in the higher
    ///   *absorb epoch*, falling back to the *narrower bound* within an
    ///   epoch: splits shrink the high bound and absorbs widen it, each
    ///   installing the matching right link in the same atomic action, and
    ///   each absorb bumps `absorb_count` exactly once at every copy. So
    ///   `(absorb_count, narrower bound)` totally orders the link/bound
    ///   history even though the bound alone moves both ways. (The node's
    ///   §4.3 `version` cannot order it: splits deliberately leave the
    ///   version alone, and a stale wide copy pulled during crash catch-up
    ///   must not undo a split.) Ties fall back to the per-link version,
    ///   which migrations bump.
    /// * **left/parent links and the PC** — by their own change versions
    ///   (totally tie-broken): successive left-neighbour splits and
    ///   migrations stamp strictly growing versions, and both hints may be
    ///   stale anyway (out-of-range routing recovers).
    ///
    /// Returns `true` if anything observable changed.
    pub fn merge_from(&mut self, other: &NodeSnapshot) -> bool {
        debug_assert_eq!(self.id, other.id);
        debug_assert_eq!(self.level, other.level);
        let mut changed = false;

        // Right link and bound first, while both sides are still visible:
        // the total order is (absorb epoch, narrower bound, link version,
        // link), and the winning copy's (bound, link, version, epoch)
        // tuple is taken wholesale so repeated merges in any grouping land
        // on the same maximum.
        let right_key = |count: u64, high: Option<Key>, v: u64, l: Option<Link>| {
            (
                count,
                u128::MAX - high.map_or(u128::MAX, |h| h as u128),
                v,
                link_rank(l),
            )
        };
        let merged_high = if right_key(
            other.absorb_count,
            other.range.high,
            other.right_link_version,
            other.right,
        ) > right_key(
            self.absorb_count,
            self.range.high,
            self.right_link_version,
            self.right,
        ) {
            if self.right != other.right {
                self.right = other.right;
                changed = true;
            }
            self.right_link_version = other.right_link_version;
            if self.absorb_count != other.absorb_count {
                self.absorb_count = other.absorb_count;
                changed = true;
            }
            other.range.high
        } else {
            self.range.high
        };

        // Range: low never moves (max is a formality); the high bound is
        // the right-link winner's — within an epoch that is the meet
        // (narrower of the two), across epochs the higher epoch's.
        let merged_range = KeyRange::new(self.range.low.max(other.range.low), merged_high);
        if merged_range != self.range {
            self.range = merged_range;
            changed = true;
        }
        let before = self.entries.len();
        self.entries.retain(|k, _| merged_range.contains(*k));
        changed |= self.entries.len() != before;

        // Entries: per-key join in the total LWW order.
        for (k, e) in &other.entries {
            if !merged_range.contains(*k) {
                continue;
            }
            match self.entries.get(k) {
                Some(mine) if entry_rank(mine) >= entry_rank(e) => {}
                _ => {
                    self.entries.insert(*k, *e);
                    changed = true;
                }
            }
        }

        // Left/parent links: lexicographic join on (link version, link)
        // pairs, the winning pair stored wholesale. Successive left-
        // neighbour splits and migrations stamp strictly growing versions;
        // both hints tolerate staleness (routing recovers).
        for (mine, my_v, theirs, their_v) in [
            (
                &mut self.left,
                &mut self.left_link_version,
                other.left,
                other.left_link_version,
            ),
            (
                &mut self.parent,
                &mut self.parent_link_version,
                other.parent,
                other.parent_link_version,
            ),
        ] {
            if (their_v, link_rank(theirs)) > (*my_v, link_rank(*mine)) {
                if *mine != theirs {
                    *mine = theirs;
                    changed = true;
                }
                *my_v = their_v;
            }
        }
        let my_v = self.version;
        if (other.version, other.pc.0) > (my_v, self.pc.0) && self.pc != other.pc {
            self.pc = other.pc;
            changed = true;
        }
        if other.version > self.version {
            self.version = other.version;
            changed = true;
        }

        // Membership: union, greater join version per member.
        for (&m, &jv) in other.copies.iter().zip(other.join_versions.iter()) {
            match self.copies.iter().position(|&p| p == m) {
                Some(i) => {
                    if jv > self.join_versions[i] {
                        self.join_versions[i] = jv;
                        changed = true;
                    }
                }
                None => {
                    self.copies.push(m);
                    self.join_versions.push(jv);
                    changed = true;
                }
            }
        }
        changed
    }

    /// Package the copy for the wire.
    pub fn snapshot(&self) -> NodeSnapshot {
        NodeSnapshot {
            id: self.id,
            level: self.level,
            range: self.range,
            version: self.version,
            entries: self.entries.iter().map(|(k, e)| (*k, *e)).collect(),
            right: self.right,
            left: self.left,
            parent: self.parent,
            pc: self.pc,
            copies: self.copies.clone(),
            join_versions: self.join_versions.clone(),
            right_link_version: self.right_link_version,
            left_link_version: self.left_link_version,
            parent_link_version: self.parent_link_version,
            absorb_count: self.absorb_count,
        }
    }
}

/// Wire representation of a full node copy (sibling creation, join grants,
/// migrations, bootstrap).
#[derive(Clone)]
pub struct NodeSnapshot {
    /// Node id.
    pub id: NodeId,
    /// Level.
    pub level: u8,
    /// Range.
    pub range: KeyRange,
    /// Version.
    pub version: u64,
    /// Entries.
    pub entries: Vec<(Key, Entry)>,
    /// Right link.
    pub right: Option<Link>,
    /// Left link.
    pub left: Option<Link>,
    /// Parent link.
    pub parent: Option<Link>,
    /// Primary copy.
    pub pc: ProcId,
    /// Membership.
    pub copies: Vec<ProcId>,
    /// Join versions aligned with `copies`.
    pub join_versions: Vec<u64>,
    /// Version at which the right link last changed (splits, migrations).
    pub right_link_version: u64,
    /// See `right_link_version`.
    pub left_link_version: u64,
    /// See `right_link_version`.
    pub parent_link_version: u64,
    /// Absorb epoch (see [`NodeCopy::absorb_count`]).
    pub absorb_count: u64,
}

impl std::fmt::Debug for NodeSnapshot {
    /// Like the derived output, but the absorb epoch appears only once the
    /// node has actually absorbed — merge-free runs keep the byte-identical
    /// trace details they always had (the digest makes the same choice).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("NodeSnapshot");
        d.field("id", &self.id)
            .field("level", &self.level)
            .field("range", &self.range)
            .field("version", &self.version)
            .field("entries", &self.entries)
            .field("right", &self.right)
            .field("left", &self.left)
            .field("parent", &self.parent)
            .field("pc", &self.pc)
            .field("copies", &self.copies)
            .field("join_versions", &self.join_versions)
            .field("right_link_version", &self.right_link_version)
            .field("left_link_version", &self.left_link_version)
            .field("parent_link_version", &self.parent_link_version);
        if self.absorb_count > 0 {
            d.field("absorb_count", &self.absorb_count);
        }
        d.finish()
    }
}

impl NodeSnapshot {
    /// Reconstitute a [`NodeCopy`].
    pub fn into_copy(self) -> NodeCopy {
        NodeCopy {
            id: self.id,
            level: self.level,
            range: self.range,
            version: self.version,
            entries: self.entries.into_iter().collect(),
            right: self.right,
            left: self.left,
            parent: self.parent,
            pc: self.pc,
            copies: self.copies,
            join_versions: self.join_versions,
            right_link_version: self.right_link_version,
            left_link_version: self.left_link_version,
            parent_link_version: self.parent_link_version,
            absorb_count: self.absorb_count,
            aas: None,
            split_pending: false,
            lock: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(pc: u32) -> NodeCopy {
        NodeCopy::new(NodeId(1), 0, KeyRange::ALL, ProcId(pc))
    }

    fn val(v: u64, stamp: u64) -> Entry {
        Entry::Val { value: v, stamp }
    }

    #[test]
    fn half_split_moves_upper_half() {
        let mut c = leaf(0);
        for k in [1u64, 3, 5, 7, 9, 11] {
            c.upsert(k, val(k, k));
        }
        let (sep, range, sib) = c.half_split();
        assert_eq!(sep, 7);
        assert_eq!(c.entries.len(), 3);
        assert_eq!(sib.len(), 3);
        assert_eq!(c.range, KeyRange::new(0, Some(7)));
        assert_eq!(range, KeyRange::new(7, None));
    }

    #[test]
    fn apply_split_discards_moved_entries() {
        let mut c = leaf(0);
        for k in [1u64, 5, 9] {
            c.upsert(k, val(k, k));
        }
        let n = c.apply_split(&SplitInfo {
            sep: 6,
            sib: NodeId(2),
            sib_home: ProcId(1),
            sib_version: 1,
        });
        assert_eq!(n, 1);
        assert_eq!(c.entries.len(), 2);
        assert_eq!(c.right.unwrap().node, NodeId(2));
        assert_eq!(c.range.high, Some(6));
    }

    #[test]
    fn digests_converge_regardless_of_order() {
        let mut a = leaf(0);
        let mut b = leaf(1);
        a.upsert(1, val(10, 1));
        a.upsert(2, val(20, 2));
        b.upsert(2, val(20, 2));
        b.upsert(1, val(10, 1));
        assert_eq!(a.digest(), b.digest());
        b.upsert(3, val(30, 3));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn membership_tracking() {
        let mut c = leaf(0);
        c.add_member(ProcId(1), 3);
        c.add_member(ProcId(2), 5);
        c.add_member(ProcId(1), 9); // duplicate ignored
        assert_eq!(c.copies.len(), 3);
        let late: Vec<ProcId> = c.members_joined_after(3).collect();
        assert_eq!(late, vec![ProcId(2)]);
        c.remove_member(ProcId(1));
        assert_eq!(c.copies, vec![ProcId(0), ProcId(2)]);
        assert_eq!(c.join_versions, vec![0, 5]);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut c = leaf(0);
        c.upsert(4, val(40, 4));
        c.right = Some(Link::new(NodeId(9), ProcId(2)));
        let c2 = c.snapshot().into_copy();
        assert_eq!(c.digest(), c2.digest());
        assert_eq!(c2.right, c.right);
        assert_eq!(c2.pc, ProcId(0));
    }

    #[test]
    fn lww_merge_keeps_highest_stamp_either_order() {
        let mut a = leaf(0);
        let mut b = leaf(1);
        let w1 = val(100, 5);
        let w2 = val(200, 9);
        a.upsert(1, w1);
        a.upsert(1, w2);
        b.upsert(1, w2);
        b.upsert(1, w1); // stale write arrives late: ignored
        assert_eq!(a.get_value(1), Some(200));
        assert_eq!(b.get_value(1), Some(200));
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn tombstone_shadows_and_can_be_overwritten() {
        let mut c = leaf(0);
        c.upsert(1, val(100, 1));
        c.upsert(1, Entry::Tomb { stamp: 2 });
        assert_eq!(c.get_value(1), None, "deleted");
        c.upsert(1, val(300, 3));
        assert_eq!(c.get_value(1), Some(300), "re-inserted");
        // A stale delete does not resurrect.
        c.upsert(1, Entry::Tomb { stamp: 2 });
        assert_eq!(c.get_value(1), Some(300));
    }

    #[test]
    fn merge_catches_up_a_stale_copy() {
        let mut a = leaf(0);
        let mut b = leaf(0);
        for k in [1u64, 2, 3] {
            a.upsert(k, val(k * 10, k));
        }
        b.upsert(1, val(10, 1)); // b missed stamps 2 and 3
        assert!(b.merge_from(&a.snapshot()));
        assert_eq!(a.digest(), b.digest());
        // Merging again changes nothing (idempotent).
        assert!(!b.merge_from(&a.snapshot()));
    }

    #[test]
    fn merge_is_symmetric_in_value() {
        let mut a = leaf(0);
        let mut b = leaf(0);
        a.upsert(1, val(10, 7));
        a.upsert(2, Entry::Tomb { stamp: 4 });
        b.upsert(1, val(99, 3)); // older write loses
        b.upsert(5, val(50, 9));
        let (sa, sb) = (a.snapshot(), b.snapshot());
        a.merge_from(&sb);
        b.merge_from(&sa);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.get_value(1), Some(10));
        assert_eq!(a.get_value(5), Some(50));
    }

    #[test]
    fn merge_narrows_to_the_split_range() {
        // `a` saw a split (range shrank, right link set, version bumped);
        // `b` is a pre-split straggler with entries the split moved away.
        let mut a = leaf(0);
        a.version = 3;
        a.range = KeyRange::new(0, Some(10));
        a.right = Some(Link::new(NodeId(2), ProcId(1)));
        a.upsert(1, val(10, 1));
        let mut b = leaf(0);
        b.upsert(1, val(10, 1));
        b.upsert(15, val(150, 2)); // split away; carried by the sibling
        assert!(b.merge_from(&a.snapshot()));
        assert_eq!(b.range.high, Some(10));
        assert_eq!(b.entries.len(), 1, "out-of-range entry dropped");
        assert_eq!(b.right.unwrap().node, NodeId(2), "newer copy's link wins");
        assert_eq!(b.version, 3);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn merge_unions_membership_with_greater_join_version() {
        let mut a = leaf(0);
        a.add_member(ProcId(1), 2);
        let mut b = leaf(0);
        b.add_member(ProcId(2), 5);
        b.merge_from(&a.snapshot());
        assert_eq!(b.copies, vec![ProcId(0), ProcId(2), ProcId(1)]);
        assert_eq!(b.join_versions, vec![0, 5, 2]);
    }

    #[test]
    fn child_routing_uses_floor_entry() {
        let mut c = NodeCopy::new(NodeId(1), 1, KeyRange::ALL, ProcId(0));
        let cr = |n: u64| {
            Entry::Child(ChildRef {
                node: NodeId(n),
                home: ProcId(0),
                version: 0,
            })
        };
        c.upsert(0, cr(10));
        c.upsert(100, cr(11));
        assert_eq!(c.child_for(50).unwrap().node, NodeId(10));
        assert_eq!(c.child_for(100).unwrap().node, NodeId(11));
        assert_eq!(c.child_for(u64::MAX).unwrap().node, NodeId(11));
    }
}
