//! The per-processor engine: queue manager + node manager (§1.1).
//!
//! `DbProc` implements [`simnet::Process`]; each delivered message is one
//! atomic *action*. Handlers for the different protocol planes live in the
//! sibling modules (`nav`, `relay`, `protocol::*`) as further `impl DbProc`
//! blocks.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use history::HistoryLog;
use parking_lot::Mutex;
use simnet::{Context, ProcId, Process};

use crate::config::TreeConfig;
use crate::metrics::ProcMetrics;
use crate::msg::{InstallReason, Msg, RelayedItem};

use crate::store::NodeStore;
use crate::types::{Key, NodeId, OpId, Outcome};

/// Timer token: flush piggyback buffers.
pub(crate) const TIMER_PIGGYBACK: u64 = 1;
/// Timer token: garbage-collect forwarding addresses.
pub(crate) const TIMER_FORWARD_GC: u64 = 2;

/// A queued coordinator operation for the available-copies baseline.
#[derive(Clone, Debug)]
pub(crate) enum CoordOp {
    /// Insert `key → entry` under a write-all lock.
    Insert {
        key: Key,
        entry: crate::types::Entry,
        tag: u64,
        reply: Option<ReplyInfo>,
    },
    /// Split the node under a write-all lock (parameters computed at apply
    /// time).
    Split,
}

/// Enough to emit a `Done` once a coordinated insert applies.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ReplyInfo {
    pub op: OpId,
    pub hops: u32,
    pub chases: u32,
}

/// An in-flight write-all lock this processor coordinates.
#[derive(Clone, Debug)]
pub(crate) struct PendingLock {
    pub node: NodeId,
    pub grants_needed: usize,
    pub op: CoordOp,
}

/// One simulated dB-tree processor.
pub struct DbProc {
    /// This processor's id.
    pub me: ProcId,
    /// Cluster size.
    pub n_procs: u32,
    /// Configuration (shared by every processor in a deployment).
    pub cfg: TreeConfig,
    /// Locally stored node copies.
    pub store: NodeStore,
    /// Shared history recorder.
    pub log: Arc<Mutex<HistoryLog>>,
    /// Protocol counters.
    pub metrics: ProcMetrics,

    // -- update stamping -----------------------------------------------------
    /// Per-processor counter feeding leaf-update stamps (LWW merge order).
    pub(crate) stamp_counter: u64,

    // -- piggybacking ------------------------------------------------------
    pub(crate) relay_buf: BTreeMap<ProcId, Vec<RelayedItem>>,
    pub(crate) relay_timer_armed: bool,

    // -- out-of-order installs ----------------------------------------------
    /// Protocol messages (relays, relayed splits) that arrived before their
    /// node's copy was installed; replayed in arrival order at install.
    pub(crate) stash: HashMap<NodeId, Vec<Msg>>,
    /// Nodes this processor deliberately left (§4.3): relays are discarded,
    /// not stashed.
    pub(crate) unjoined: HashSet<NodeId>,
    /// Joins requested but not yet granted (dedupes Join messages).
    pub(crate) pending_joins: HashSet<NodeId>,

    // -- lazy merge-at-empty -------------------------------------------------
    /// Leaves this PC has asked to merge away (dedupes MergeReq until the
    /// grant or decline arrives).
    pub(crate) merge_pending: HashSet<NodeId>,
    /// Client writes parked behind a pending merge under the seeded
    /// `merge_wedge_grants` livelock. Never drained — the grant never
    /// comes — so the liveness oracle can count them.
    pub(crate) parked_writes: Vec<Msg>,
    /// Nodes retired by a committed merge, mapped to the left sibling that
    /// absorbed their range. Consulted to reroute in-flight relays, answer
    /// sync requests from zombie copies, and refuse zombie installs. Lives
    /// in stable storage with the rest of `DbProc` (survives crashes).
    pub(crate) retired: HashMap<NodeId, crate::types::Link>,

    // -- failure-detector recovery (quarantine & anti-entropy) ---------------
    /// Peers the failure detector currently suspects: relays to them are
    /// suppressed (and recorded in `missed`) instead of piling up in the
    /// session's retransmit queue. Ordered, for deterministic replay.
    pub(crate) quarantined: BTreeSet<ProcId>,
    /// Nodes whose relays each quarantined peer missed; pushed as one
    /// full-state sync per node when the peer is heard from again.
    pub(crate) missed: BTreeMap<ProcId, BTreeSet<NodeId>>,

    // -- observability bookkeeping -------------------------------------------
    // Timestamps feeding the lazy-lag gauges. Deliberately excluded from
    // `fingerprint_into`: wall times never influence protocol behavior, and
    // hashing them would make the model checker see every schedule as a
    // distinct state.
    /// Tick at which each destination's piggyback buffer went non-empty
    /// (cleared when the buffer drains). Feeds `relay.backlog_age`.
    pub(crate) relay_buf_since: BTreeMap<ProcId, u64>,
    /// Park tick of each entry in `parked_writes` (lockstep with it).
    /// Feeds `proc.parked_dwell`.
    pub(crate) parked_since: Vec<u64>,
    /// Tick at which each resident copy last applied a relayed update —
    /// the per-copy staleness stamp. Feeds `store.staleness_max`.
    pub(crate) copy_stamp: BTreeMap<NodeId, u64>,

    // -- available-copies coordinator state ---------------------------------
    pub(crate) next_ticket: u64,
    pub(crate) pending_locks: HashMap<u64, PendingLock>,
    pub(crate) coord_busy: HashSet<NodeId>,
    pub(crate) coord_q: HashMap<NodeId, VecDeque<CoordOp>>,
}

impl DbProc {
    /// A processor with an empty store (the builder populates it).
    pub fn new(me: ProcId, n_procs: u32, cfg: TreeConfig, log: Arc<Mutex<HistoryLog>>) -> Self {
        DbProc {
            me,
            n_procs,
            cfg,
            store: NodeStore::new(),
            log,
            metrics: ProcMetrics::default(),
            stamp_counter: 0,
            relay_buf: BTreeMap::new(),
            relay_timer_armed: false,
            stash: HashMap::new(),
            unjoined: HashSet::new(),
            pending_joins: HashSet::new(),
            merge_pending: HashSet::new(),
            parked_writes: Vec::new(),
            retired: HashMap::new(),
            quarantined: BTreeSet::new(),
            missed: BTreeMap::new(),
            relay_buf_since: BTreeMap::new(),
            parked_since: Vec::new(),
            copy_stamp: BTreeMap::new(),
            next_ticket: 0,
            pending_locks: HashMap::new(),
            coord_busy: HashSet::new(),
            coord_q: HashMap::new(),
        }
    }

    /// Leaves this processor has asked (and is still waiting) to merge away.
    /// A liveness-oracle probe: under fair scheduling with no wedge bug the
    /// count returns to zero once the cluster quiesces.
    pub fn merge_pending_count(&self) -> usize {
        self.merge_pending.len()
    }

    /// Client writes parked behind a never-granted merge (only ever nonzero
    /// under the seeded `merge_wedge_grants` livelock). A liveness-oracle
    /// probe: each parked write is a submitted op that will never complete.
    pub fn parked_write_count(&self) -> usize {
        self.parked_writes.len()
    }

    /// Hash this processor's full protocol-visible state into `h` — the
    /// model checker's per-processor state fingerprint. Every collection is
    /// hashed in key order (never hash-map iteration order), and no virtual
    /// time ever enters the hash, so two schedules that produced the same
    /// state by different routes collide. The shared history log's tag
    /// watermark is folded in: it is global minting state, and merging two
    /// branches that issued different action counts would be unsound.
    pub fn fingerprint_into(&self, h: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        self.me.0.hash(h);
        self.stamp_counter.hash(h);
        self.store.fingerprint_into(h);
        for (dst, items) in &self.relay_buf {
            dst.0.hash(h);
            format!("{items:?}").hash(h);
        }
        self.relay_timer_armed.hash(h);
        let mut stash: Vec<(&NodeId, &Vec<Msg>)> = self.stash.iter().collect();
        stash.sort_unstable_by_key(|(n, _)| **n);
        for (n, msgs) in stash {
            n.raw().hash(h);
            format!("{msgs:?}").hash(h);
        }
        for set in [&self.unjoined, &self.pending_joins, &self.merge_pending] {
            let mut ids: Vec<u64> = set.iter().map(|n| n.raw()).collect();
            ids.sort_unstable();
            ids.hash(h);
        }
        format!("{:?}", self.parked_writes).hash(h);
        let mut retired: Vec<(u64, u64, u32)> = self
            .retired
            .iter()
            .map(|(n, l)| (n.raw(), l.node.raw(), l.home.0))
            .collect();
        retired.sort_unstable();
        retired.hash(h);
        for p in &self.quarantined {
            p.0.hash(h);
        }
        for (p, nodes) in &self.missed {
            p.0.hash(h);
            for n in nodes {
                n.raw().hash(h);
            }
        }
        self.next_ticket.hash(h);
        let mut locks: Vec<(u64, String)> = self
            .pending_locks
            .iter()
            .map(|(t, l)| (*t, format!("{l:?}")))
            .collect();
        locks.sort_unstable();
        locks.hash(h);
        let mut busy: Vec<u64> = self.coord_busy.iter().map(|n| n.raw()).collect();
        busy.sort_unstable();
        busy.hash(h);
        let mut queues: Vec<(u64, String)> = self
            .coord_q
            .iter()
            .map(|(n, q)| (n.raw(), format!("{q:?}")))
            .collect();
        queues.sort_unstable();
        queues.hash(h);
        self.log.lock().tag_watermark().hash(h);
    }

    /// Every other processor in the cluster.
    pub(crate) fn all_other_procs(&self) -> impl Iterator<Item = ProcId> + '_ {
        let me = self.me;
        (0..self.n_procs).map(ProcId).filter(move |&p| p != me)
    }

    /// Sizes of pending stashes (empty at healthy quiescence).
    pub(crate) fn stash_sizes(&self) -> BTreeMap<NodeId, usize> {
        self.stash.iter().map(|(k, v)| (*k, v.len())).collect()
    }

    /// Mint the next leaf-update stamp (strictly increasing per processor,
    /// globally unique — see [`crate::Stamp`]).
    pub(crate) fn next_stamp(&mut self) -> u64 {
        self.stamp_counter += 1;
        crate::types::Stamp::new(self.stamp_counter, self.me)
    }

    /// Issue a history tag for a new initial update of `class`.
    pub(crate) fn issue_tag(&self, class: &'static str) -> u64 {
        self.log.lock().issue(class)
    }

    /// Send `msg` toward a node: locally if we store a copy, else to `home`.
    pub(crate) fn send_to_node(
        &self,
        ctx: &mut Context<'_, Msg>,
        node: NodeId,
        home: ProcId,
        msg: Msg,
    ) {
        if self.store.contains(node) {
            ctx.send(self.me, msg);
        } else {
            ctx.send(home, msg);
        }
    }

    /// Reply to the external client.
    pub(crate) fn reply(&self, ctx: &mut Context<'_, Msg>, outcome: Outcome) {
        ctx.send(ProcId::EXTERNAL, Msg::Done(outcome));
    }

    /// Install a copy arriving on the wire.
    fn handle_install(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        snapshot: crate::node::NodeSnapshot,
        reason: InstallReason,
        covered: Vec<u64>,
    ) {
        let id = snapshot.id;
        if self.retired.contains_key(&id) {
            // A zombie: the node was merged away while this install (a
            // sibling copy, migration, or join grant) was in flight.
            // Installing it would resurrect a leaf whose range the absorber
            // already owns and break the leaf chain.
            self.pending_joins.remove(&id);
            return;
        }
        if reason == InstallReason::JoinGrant {
            self.pending_joins.remove(&id);
            if self.store.contains(id) {
                // A duplicate grant (re-joins race): the resident copy is
                // already receiving relays and may have applied updates the
                // stale snapshot predates — never overwrite it.
                self.unjoined.remove(&id);
                return;
            }
        }
        let copy = snapshot.into_copy();
        let parent = copy.parent;
        let is_leaf = copy.is_leaf();
        self.store.install(copy);
        self.unjoined.remove(&id);
        // The PC records `copy_created` for sibling copies at creation time;
        // migrations and join grants record here, when the snapshot actually
        // lands. For grants this re-marks a copy live after a crash-recovery
        // rejoin (the restart logged `copy_deleted`); the `covered` tags are
        // the PC's coverage, which this snapshot synthesizes. Recording only
        // on a real install keeps the duplicate-grant early-return above from
        // claiming coverage a resident copy never received.
        if matches!(
            reason,
            InstallReason::Migration { .. } | InstallReason::JoinGrant
        ) {
            self.log.lock().copy_created(id.raw(), self.me.0, covered);
        }
        // Apply protocol events that raced ahead of the install, in arrival
        // order (inline, so they stay ordered ahead of future arrivals).
        if let Some(items) = self.stash.remove(&id) {
            for m in items {
                self.replay_stashed(ctx, m);
            }
        }
        match reason {
            InstallReason::Migration { from } => {
                self.metrics.migrations_in += 1;
                self.after_migration_in(ctx, id, from);
                if self.cfg.variable_copies && is_leaf {
                    self.ensure_path_replication(ctx, parent);
                }
            }
            InstallReason::JoinGrant => {
                self.metrics.joins += 1;
                // Continue joining upward until we hold the whole path.
                self.ensure_path_replication(ctx, parent);
            }
            InstallReason::SiblingCopy | InstallReason::Bootstrap => {}
        }
    }

    /// Re-execute a stashed protocol event against the now-resident copy.
    pub(crate) fn replay_stashed(&mut self, ctx: &mut Context<'_, Msg>, msg: Msg) {
        match msg {
            Msg::RelayedInsert {
                node,
                key,
                entry,
                tag,
                version,
                span,
            } => self.apply_relayed_insert(
                ctx,
                RelayedItem {
                    node,
                    key,
                    entry,
                    tag,
                    version,
                    span,
                },
            ),
            Msg::RelayedSplit { node, info, tag } => {
                self.handle_relayed_split(ctx, node, info, tag)
            }
            other => self.on_message(ctx, self.me, other),
        }
    }

    fn handle_new_root(&mut self, root: NodeId, level: u8, home: ProcId, children: [NodeId; 2]) {
        self.store.set_root(root, level, home);
        for child in children {
            if let Some(c) = self.store.get_mut(child) {
                c.parent = Some(crate::types::Link::new(root, home));
            }
        }
    }
}

impl Process for DbProc {
    type Msg = Msg;

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: ProcId, msg: Msg) {
        match msg {
            Msg::Client { op, key, intent } => self.handle_client(ctx, op, key, intent),
            Msg::Descend {
                op,
                key,
                intent,
                node,
                hops,
                chases,
            } => self.handle_descend(ctx, op, key, intent, node, hops, chases),
            Msg::ClientScan { op, from, limit } => self.handle_client_scan(ctx, op, from, limit),
            Msg::Scan {
                op,
                key,
                remaining,
                node,
                acc,
                hops,
            } => self.handle_scan(ctx, op, key, remaining, node, acc, hops),
            Msg::ScanResult { .. } => {
                debug_assert!(false, "ScanResult delivered to a processor");
            }
            Msg::InsertAt {
                node,
                level,
                key,
                entry,
                tag,
            } => self.handle_insert_at(ctx, node, level, key, entry, tag),
            Msg::RelayedInsert {
                node,
                key,
                entry,
                tag,
                version,
                span,
            } => self.handle_relayed_insert(
                ctx,
                RelayedItem {
                    node,
                    key,
                    entry,
                    tag,
                    version,
                    span,
                },
            ),
            Msg::RelayBatch(items) => {
                for item in items {
                    self.handle_relayed_insert(ctx, item);
                }
            }
            Msg::SplitStart { node } => self.handle_split_start(ctx, from, node),
            Msg::SplitAck { node } => self.handle_split_ack(ctx, node),
            Msg::SplitEnd { node, info, tag } => self.handle_split_end(ctx, node, info, tag),
            Msg::RelayedSplit { node, info, tag } => {
                self.handle_relayed_split(ctx, node, info, tag)
            }
            Msg::MergeReq {
                node,
                child,
                low,
                reply_to,
            } => self.handle_merge_req(ctx, node, child, low, reply_to),
            Msg::MergeGrant { child, left } => self.handle_merge_grant(ctx, child, left),
            Msg::MergeDecline { child } => self.handle_merge_decline(child),
            Msg::RelayedRetire { node, left } => self.handle_relayed_retire(ctx, node, left),
            Msg::Absorb { node, info } => self.handle_absorb(ctx, node, info),
            Msg::RelayedAbsorb { node, info, count } => {
                self.handle_relayed_absorb(ctx, node, info, count)
            }
            Msg::InstallCopy {
                snapshot,
                reason,
                covered,
            } => self.handle_install(ctx, *snapshot, reason, covered),
            Msg::NewRoot {
                root,
                level,
                home,
                children,
            } => self.handle_new_root(root, level, home, children),
            Msg::Migrate { node, dest } => self.handle_migrate(ctx, node, dest),
            Msg::LinkChange {
                node,
                dir,
                link,
                version,
                tag,
                relayed,
                supersedes,
            } => self.handle_link_change(ctx, node, dir, link, version, tag, relayed, supersedes),
            Msg::ChildHomeChange {
                node,
                sep,
                child,
                home,
                version,
                tag,
                relayed,
            } => self.handle_child_home_change(ctx, node, sep, child, home, version, tag, relayed),
            Msg::Join { node, joiner } => self.handle_join(ctx, node, joiner),
            Msg::RelayedJoin {
                node,
                member,
                version,
                tag,
            } => self.handle_relayed_join(node, member, version, tag),
            Msg::Unjoin { node, leaver } => self.handle_unjoin(ctx, node, leaver),
            Msg::RelayedUnjoin {
                node,
                member,
                version,
                tag,
            } => self.handle_relayed_unjoin(node, member, version, tag),
            Msg::SyncReq { node } => self.handle_sync_req(ctx, from, node),
            Msg::SyncState {
                node,
                snapshot,
                covered,
            } => self.handle_sync_state(ctx, node, *snapshot, covered),
            Msg::LockReq { node, ticket } => self.handle_lock_req(ctx, from, node, ticket),
            Msg::LockGrant { node, ticket } => self.handle_lock_grant(ctx, node, ticket),
            Msg::ApplyUnlock {
                node,
                ticket,
                update,
            } => self.handle_apply_unlock(ctx, node, ticket, update),
            Msg::Done(_) => {
                // Replies are addressed to EXTERNAL; one arriving here is a
                // harness bug, not a protocol state — drop it.
                debug_assert!(false, "Done delivered to a processor");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, token: u64) {
        match token {
            TIMER_PIGGYBACK => {
                self.relay_timer_armed = false;
                self.metrics.piggyback_timer_flushes += 1;
                self.flush_relays(ctx);
            }
            TIMER_FORWARD_GC => {
                let ttl = self.cfg.forwarding_ttl;
                self.store.gc_forwards(ctx.now().ticks(), ttl);
            }
            _ => {}
        }
    }

    /// Crash recovery (§1.1 stability model + §4.3 joins): the stable store
    /// — leaves, PC copies, and the session outbox — survives the crash;
    /// the volatile cache of non-PC interior copies does not. Each dropped
    /// copy is re-acquired from its PC through the version-numbered join
    /// protocol, which resynchronizes it exactly like a late joiner.
    fn on_restart(&mut self, ctx: &mut Context<'_, Msg>) {
        self.metrics.recoveries += 1;
        // Quarantine opinions predate the crash; flush and forget them
        // (see `flush_quarantine_on_restart`).
        self.flush_quarantine_on_restart(ctx);
        // The piggyback timer died with the crash; the buffered relays are
        // stable, so flush them now and let the next buffering re-arm it.
        self.relay_timer_armed = false;
        self.flush_relays(ctx);
        let me = self.me;
        let mut victims: Vec<(NodeId, ProcId)> = self
            .store
            .iter()
            .filter(|c| !c.is_leaf() && c.pc != me)
            .map(|c| (c.id, c.pc))
            .collect();
        // The store iterates in hash order; the join messages must go out
        // in a replayable order or identical seeds diverge.
        victims.sort_unstable();
        ctx.mark(
            simnet::TraceEvent::Rejoin,
            "recovery.rejoin",
            format!(
                "rejoin {} interior copies, sync pull {}",
                victims.len(),
                if self.cfg.sync_on_restart {
                    "on"
                } else {
                    "off"
                },
            ),
        );
        for (node, pc) in victims {
            self.store.remove(node);
            self.log.lock().copy_deleted(node.raw(), me.0);
            if self.pending_joins.insert(node) {
                self.metrics.recovery_rejoins += 1;
                // Relays may race ahead of the re-grant; they must stash
                // for replay, not be discarded as post-unjoin strays.
                self.unjoined.remove(&node);
                ctx.send(pc, Msg::Join { node, joiner: me });
            }
        }
        // Anti-entropy catch-up for the copies the stable store kept: the
        // rejoin pass re-acquires dropped interior copies, this pulls the
        // retained ones (leaves, own-PC nodes) back up to date.
        if self.cfg.sync_on_restart {
            self.sync_pull_all(ctx);
        }
    }

    fn on_peer_change(&mut self, ctx: &mut Context<'_, Msg>, peer: ProcId, up: bool) {
        self.handle_peer_change(ctx, peer, up);
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        self.metrics.named()
    }

    /// Lazy-lag level gauges, snapshotted by the sampler (never by the
    /// trace). Ages are computed against the sample time from the
    /// timestamps kept in the observability-bookkeeping fields, so an idle
    /// backlog visibly *ages* between samples even though no action ran.
    fn gauges(&self, now: simnet::SimTime) -> Vec<(&'static str, u64)> {
        let t = now.ticks();
        let age = |since: u64| t.saturating_sub(since);
        let backlog_depth: u64 = self.relay_buf.values().map(|v| v.len() as u64).sum();
        let backlog_age = self.relay_buf_since.values().copied().min().map_or(0, age);
        let deferred: u64 = self.missed.values().map(|s| s.len() as u64).sum();
        let dwell = self.parked_since.iter().copied().min().map_or(0, age);
        // Copies can be removed (merge retire, migration, crash rejoin)
        // without scrubbing their stamp; only resident copies count.
        let staleness = self
            .copy_stamp
            .iter()
            .filter(|(n, _)| self.store.contains(**n))
            .map(|(_, &s)| age(s))
            .max()
            .unwrap_or(0);
        vec![
            ("proc.merge_pending", self.merge_pending.len() as u64),
            ("proc.parked_dwell", dwell),
            ("proc.parked_writes", self.parked_writes.len() as u64),
            ("relay.backlog_age", backlog_age),
            ("relay.backlog_depth", backlog_depth),
            ("relay.deferred_depth", deferred),
            ("store.staleness_max", staleness),
        ]
    }

    fn fingerprint(&self) -> Option<u64> {
        let mut h = simnet::FxHasher::default();
        self.fingerprint_into(&mut h);
        Some(std::hash::Hasher::finish(&h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TreeConfig;

    #[test]
    fn all_other_procs_excludes_self() {
        let log = Arc::new(Mutex::new(HistoryLog::disabled()));
        let p = DbProc::new(ProcId(1), 4, TreeConfig::default(), log);
        let others: Vec<u32> = p.all_other_procs().map(|p| p.0).collect();
        assert_eq!(others, vec![0, 2, 3]);
    }
}
