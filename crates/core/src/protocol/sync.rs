//! §4.1.1 — the synchronous split protocol.
//!
//! The PC runs an AAS around each split: `split_start` blocks initial
//! inserts at every copy (relayed inserts and searches continue), the PC
//! waits for all acknowledgements, performs the split, and `split_end`
//! unblocks. Costs `3·|copies(n)|` messages per split and stalls initial
//! inserts for a round trip — the costs the semisync protocol removes.

use simnet::{Context, ProcId};

use crate::msg::{Msg, SplitInfo};
use crate::node::AasState;
use crate::proc::DbProc;
use crate::types::NodeId;

impl DbProc {
    /// PC: begin the split AAS for `node`.
    pub(crate) fn start_sync_split(&mut self, ctx: &mut Context<'_, Msg>, node: NodeId) {
        let me = self.me;
        let peers: Vec<ProcId> = {
            let Some(copy) = self.store.get_mut(node) else {
                return;
            };
            debug_assert_eq!(copy.pc, me);
            if copy.aas.is_some() {
                // A split is already in flight; run another afterwards.
                copy.split_pending = true;
                return;
            }
            let peers: Vec<ProcId> = copy.peers(me).collect();
            copy.aas = Some(AasState {
                acks_pending: peers.len(),
                blocked: Vec::new(),
            });
            peers
        };
        if peers.is_empty() {
            self.finish_sync_split(ctx, node);
            return;
        }
        for p in peers {
            ctx.send(p, Msg::SplitStart { node });
        }
    }

    /// Non-PC copy: the AAS begins — block initial inserts, acknowledge.
    pub(crate) fn handle_split_start(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: ProcId,
        node: NodeId,
    ) {
        let Some(copy) = self.store.get_mut(node) else {
            // Copy not resident (variable-membership race): acknowledge so
            // the PC is not stuck; we will learn the split via the stash.
            ctx.send(from, Msg::SplitAck { node });
            return;
        };
        copy.aas = Some(AasState {
            acks_pending: 0,
            blocked: Vec::new(),
        });
        ctx.send(from, Msg::SplitAck { node });
    }

    /// PC: one copy acknowledged.
    pub(crate) fn handle_split_ack(&mut self, ctx: &mut Context<'_, Msg>, node: NodeId) {
        let ready = {
            let Some(copy) = self.store.get_mut(node) else {
                return;
            };
            let Some(aas) = copy.aas.as_mut() else {
                return;
            };
            aas.acks_pending = aas.acks_pending.saturating_sub(1);
            aas.acks_pending == 0
        };
        if ready {
            self.finish_sync_split(ctx, node);
        }
    }

    /// PC: all copies acknowledged — perform the split and end the AAS.
    pub(crate) fn finish_sync_split(&mut self, ctx: &mut Context<'_, Msg>, node: NodeId) {
        let out = self.half_split_local(ctx, node);
        let tag = self.issue_tag("split");
        self.log.lock().observe_initial(node.raw(), self.me.0, tag);
        for &p in &out.peers {
            ctx.send(
                p,
                Msg::SplitEnd {
                    node,
                    info: out.info,
                    tag,
                },
            );
        }
        self.complete_split(ctx, node, &out);
        // End the local AAS and replay blocked initial inserts.
        self.end_aas(ctx, node);
        let again = {
            let Some(copy) = self.store.get_mut(node) else {
                return;
            };
            let again = copy.split_pending && copy.overfull(self.cfg.fanout);
            copy.split_pending = false;
            again
        };
        if again {
            self.start_sync_split(ctx, node);
        }
    }

    /// Non-PC copy: apply the split and end the AAS.
    pub(crate) fn handle_split_end(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        node: NodeId,
        info: SplitInfo,
        tag: u64,
    ) {
        if let Some(copy) = self.store.get_mut(node) {
            copy.apply_split(&info);
            self.log
                .lock()
                .observe(node.raw(), self.me.0, tag, history::ObserveKind::Applied);
        }
        self.end_aas(ctx, node);
    }

    /// Clear the AAS state and re-submit the blocked initial inserts (they
    /// re-execute against the post-split copy and route right if their keys
    /// moved).
    fn end_aas(&mut self, ctx: &mut Context<'_, Msg>, node: NodeId) {
        let now = ctx.now().ticks();
        let blocked = {
            let Some(copy) = self.store.get_mut(node) else {
                return;
            };
            copy.aas.take().map(|a| a.blocked).unwrap_or_default()
        };
        for (blocked_at, msg) in blocked {
            self.metrics.blocked_ticks += now.saturating_sub(blocked_at);
            ctx.send(self.me, msg);
        }
    }
}
