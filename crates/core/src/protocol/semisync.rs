//! §4.1.2 — the semi-synchronous split protocol.
//!
//! The PC splits immediately (no AAS, no blocking) and sends one relayed
//! split to each other copy — `|copies(n)|` messages per split, which the
//! paper shows is optimal. Compatibility is restored by *rewriting history*:
//! when a relayed insert reaches the PC after the split moved its key away,
//! the PC re-issues it as an initial insert toward the sibling (see
//! `relay.rs`). The `Naive` protocol shares this module's split path but
//! omits the rewrite — reproducing the Fig 4 lost-insert bug.

use simnet::Context;

use crate::msg::{Msg, SplitInfo};
use crate::proc::DbProc;
use crate::types::NodeId;

impl DbProc {
    /// PC: split `node` immediately and relay.
    pub(crate) fn semisync_split(&mut self, ctx: &mut Context<'_, Msg>, node: NodeId) {
        let out = self.half_split_local(ctx, node);
        let tag = self.issue_tag("split");
        self.log.lock().observe_initial(node.raw(), self.me.0, tag);
        for &p in &out.peers {
            ctx.send(
                p,
                Msg::RelayedSplit {
                    node,
                    info: out.info,
                    tag,
                },
            );
        }
        self.complete_split(ctx, node, &out);
    }

    /// Non-PC copy: apply a relayed split on arrival.
    pub(crate) fn handle_relayed_split(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        node: NodeId,
        info: SplitInfo,
        tag: u64,
    ) {
        if !self.store.contains(node) {
            if self.unjoined.contains(&node) {
                return; // departed member: discard
            }
            // Install in flight: preserve ordering via the stash.
            self.stash
                .entry(node)
                .or_default()
                .push(Msg::RelayedSplit { node, info, tag });
            return;
        }
        let copy = self.store.get_mut(node).expect("checked");
        let discarded = copy.apply_split(&info);
        if discarded > 0 {
            self.metrics.relays_discarded += discarded as u64;
        }
        self.log
            .lock()
            .observe(node.raw(), self.me.0, tag, history::ObserveKind::Applied);
        let _ = ctx;
    }
}
