//! The vigorous baseline: an available-copies-style write-all protocol [2].
//!
//! Every update to a replicated node is coordinated by its PC: lock all
//! copies (one round trip each), apply, unlock. While a copy is locked,
//! *all* actions that arrive at it — searches included — queue. This is the
//! synchronization the paper's lazy updates eliminate; the experiments
//! measure its message and latency overhead against the semisync protocol.

use history::ObserveKind;
use simnet::{Context, ProcId};

use crate::msg::{LockedUpdate, Msg};
use crate::node::LockState;
use crate::proc::{CoordOp, DbProc, PendingLock};
use crate::types::{NodeId, Outcome};

impl DbProc {
    /// PC: run `op` under a write-all lock (or queue it behind the current
    /// coordinated operation on this node).
    pub(crate) fn coordinate(&mut self, ctx: &mut Context<'_, Msg>, node: NodeId, op: CoordOp) {
        if self.coord_busy.contains(&node) {
            self.coord_q.entry(node).or_default().push_back(op);
            return;
        }
        self.coord_busy.insert(node);
        let peers: Vec<ProcId> = {
            let Some(copy) = self.store.get_mut(node) else {
                self.coord_busy.remove(&node);
                return;
            };
            debug_assert_eq!(copy.pc, self.me);
            copy.lock = Some(LockState::default());
            copy.peers(self.me).collect()
        };
        if peers.is_empty() {
            self.apply_coordinated(ctx, node, op);
            return;
        }
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.pending_locks.insert(
            ticket,
            PendingLock {
                node,
                grants_needed: peers.len(),
                op,
            },
        );
        for p in peers {
            ctx.send(p, Msg::LockReq { node, ticket });
        }
    }

    /// Copy: grant the coordinator's lock.
    pub(crate) fn handle_lock_req(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: ProcId,
        node: NodeId,
        ticket: u64,
    ) {
        if let Some(copy) = self.store.get_mut(node) {
            // The PC serializes coordinated ops, so a copy is never asked to
            // lock twice concurrently.
            debug_assert!(copy.lock.is_none(), "double lock");
            copy.lock = Some(LockState::default());
        }
        ctx.send(from, Msg::LockGrant { node, ticket });
    }

    /// Coordinator: a copy granted; when all have, apply and broadcast.
    pub(crate) fn handle_lock_grant(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        node: NodeId,
        ticket: u64,
    ) {
        let ready = {
            let Some(pending) = self.pending_locks.get_mut(&ticket) else {
                return;
            };
            debug_assert_eq!(pending.node, node);
            pending.grants_needed -= 1;
            pending.grants_needed == 0
        };
        if ready {
            let pending = self.pending_locks.remove(&ticket).expect("checked");
            self.apply_coordinated(ctx, node, pending.op);
        }
    }

    /// Coordinator: all copies locked — apply locally, ship `ApplyUnlock`,
    /// release the local lock, and start the next queued operation.
    fn apply_coordinated(&mut self, ctx: &mut Context<'_, Msg>, node: NodeId, op: CoordOp) {
        let me = self.me;
        match op {
            CoordOp::Insert {
                key,
                entry,
                tag,
                reply,
            } => {
                let (prev, peers, overfull) = {
                    let copy = self.store.get_mut(node).expect("coordinator holds copy");
                    let prev = if copy.range.contains(key) {
                        copy.upsert(key, entry)
                    } else {
                        // The key's range moved right under a previous
                        // coordinated split that queued this op: re-route
                        // after unlocking.
                        None
                    };
                    (
                        prev,
                        copy.peers(me).collect::<Vec<_>>(),
                        copy.overfull(self.cfg.fanout),
                    )
                };
                let in_range = self
                    .store
                    .get(node)
                    .map(|c| c.range.contains(key))
                    .unwrap_or(false);
                if in_range {
                    self.log.lock().observe_initial(node.raw(), me.0, tag);
                    for &p in &peers {
                        ctx.send(
                            p,
                            Msg::ApplyUnlock {
                                node,
                                ticket: 0,
                                update: LockedUpdate::Insert { key, entry, tag },
                            },
                        );
                    }
                } else {
                    // Unlock without a payload; the key's range moved right
                    // under a previously coordinated split.
                    let level = self.store.get(node).map(|c| c.level).unwrap_or(0);
                    let right = self.store.get(node).and_then(|c| c.right);
                    for &p in &peers {
                        ctx.send(
                            p,
                            Msg::ApplyUnlock {
                                node,
                                ticket: 0,
                                update: LockedUpdate::Noop,
                            },
                        );
                    }
                    // Client-visible writes restart as a fresh descent so
                    // the reply is sent only after the write actually lands
                    // (read-your-writes); internal child-pointer inserts
                    // re-route directly with their original tag. The
                    // restarted descent issues a fresh tag, so close out the
                    // original one.
                    if reply.is_some() && entry.child().is_none() {
                        self.log.lock().observe_global(tag);
                    }
                    match (reply, entry) {
                        (Some(r), crate::types::Entry::Val { value, .. }) => {
                            ctx.send(
                                self.me,
                                Msg::Descend {
                                    op: r.op,
                                    key,
                                    intent: crate::types::Intent::Insert(value),
                                    node,
                                    hops: r.hops,
                                    chases: r.chases + 1,
                                },
                            );
                        }
                        (Some(r), crate::types::Entry::Tomb { .. }) => {
                            ctx.send(
                                self.me,
                                Msg::Descend {
                                    op: r.op,
                                    key,
                                    intent: crate::types::Intent::Delete,
                                    node,
                                    hops: r.hops,
                                    chases: r.chases + 1,
                                },
                            );
                        }
                        _ => {
                            if let Some(right) = right {
                                let msg = Msg::InsertAt {
                                    node: right.node,
                                    level,
                                    key,
                                    entry,
                                    tag,
                                };
                                self.send_to_node(ctx, right.node, right.home, msg);
                            }
                        }
                    }
                    self.release_local_lock(ctx, node);
                    self.next_coordinated(ctx, node);
                    return;
                }
                if let Some(r) = reply {
                    self.reply(
                        ctx,
                        Outcome {
                            op: r.op,
                            found: prev.and_then(|e| e.value()),
                            hops: r.hops,
                            chases: r.chases,
                        },
                    );
                }
                self.release_local_lock(ctx, node);
                if overfull && in_range {
                    self.coord_q
                        .entry(node)
                        .or_default()
                        .push_back(CoordOp::Split);
                }
                self.next_coordinated(ctx, node);
            }
            CoordOp::Split => {
                let still_overfull = self
                    .store
                    .get(node)
                    .map(|c| c.overfull(self.cfg.fanout))
                    .unwrap_or(false);
                if still_overfull {
                    let out = self.half_split_local(ctx, node);
                    let tag = self.issue_tag("split");
                    self.log.lock().observe_initial(node.raw(), me.0, tag);
                    for &p in &out.peers {
                        ctx.send(
                            p,
                            Msg::ApplyUnlock {
                                node,
                                ticket: 0,
                                update: LockedUpdate::Split {
                                    info: out.info,
                                    tag,
                                },
                            },
                        );
                    }
                    self.complete_split(ctx, node, &out);
                } else {
                    // Someone else's split already fixed it: plain unlock.
                    let peers: Vec<ProcId> = self
                        .store
                        .get(node)
                        .map(|c| c.peers(me).collect())
                        .unwrap_or_default();
                    for p in peers {
                        ctx.send(
                            p,
                            Msg::ApplyUnlock {
                                node,
                                ticket: 0,
                                update: LockedUpdate::Noop,
                            },
                        );
                    }
                }
                self.release_local_lock(ctx, node);
                self.next_coordinated(ctx, node);
            }
        }
    }

    /// Copy: apply the coordinated update and unlock.
    pub(crate) fn handle_apply_unlock(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        node: NodeId,
        _ticket: u64,
        update: LockedUpdate,
    ) {
        let me = self.me;
        if let Some(copy) = self.store.get_mut(node) {
            match update {
                LockedUpdate::Insert { key, entry, tag } => {
                    if copy.range.contains(key) {
                        copy.upsert(key, entry);
                        if tag != 0 {
                            self.log
                                .lock()
                                .observe(node.raw(), me.0, tag, ObserveKind::Applied);
                        }
                    }
                }
                LockedUpdate::Split { info, tag } => {
                    copy.apply_split(&info);
                    self.log
                        .lock()
                        .observe(node.raw(), me.0, tag, ObserveKind::Applied);
                }
                LockedUpdate::Noop => {}
            }
        }
        self.release_local_lock(ctx, node);
    }

    /// Unlock the local copy and replay everything that queued behind it.
    fn release_local_lock(&mut self, ctx: &mut Context<'_, Msg>, node: NodeId) {
        let now = ctx.now().ticks();
        let queued = {
            let Some(copy) = self.store.get_mut(node) else {
                return;
            };
            copy.lock.take().map(|l| l.queued).unwrap_or_default()
        };
        for (queued_at, msg) in queued {
            self.metrics.blocked_ticks += now.saturating_sub(queued_at);
            ctx.send(self.me, msg);
        }
    }

    /// Start the next coordinated operation queued on `node`, if any.
    fn next_coordinated(&mut self, ctx: &mut Context<'_, Msg>, node: NodeId) {
        self.coord_busy.remove(&node);
        let next = self.coord_q.get_mut(&node).and_then(|q| q.pop_front());
        if let Some(op) = next {
            self.coordinate(ctx, node, op);
        }
    }
}
