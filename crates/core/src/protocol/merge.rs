//! Lazy merge-at-empty: reclaiming leaves that deletes emptied.
//!
//! The paper stops at "merging is not considered" ([11] leaves nodes in
//! place forever); this module adds the missing action family with the same
//! lazy discipline the half-split uses, inverted:
//!
//! * **Grant-then-commit.** The empty leaf's PC asks the *parent's* PC for
//!   permission ([`Msg::MergeReq`]). The parent verifies — the child edge is
//!   still present at the separator and a *live* left sibling exists under
//!   the same parent — and answers [`Msg::MergeGrant`] naming that sibling,
//!   or [`Msg::MergeDecline`]. The grant is advisory: the child's PC
//!   re-verifies emptiness at commit time, because any number of client
//!   inserts can race the round trip. (The `merge_unsafe_no_reverify` knob
//!   skips exactly that re-check, recreating the Naive protocol's
//!   check-then-act bug for the explorer to catch.)
//! * **Retire, don't redistribute.** The commit deletes the copy, leaves a
//!   forwarding address, and hands the emptied range to the left sibling in
//!   one [`Msg::Absorb`] — the mirror image of a half-split, and with the
//!   mirrored link invariant: the absorber's right link jumps *over* the
//!   retired node, and the right neighbour's left link is swung by an
//!   ordered [`Msg::LinkChange`]. A search or scan that still reaches the
//!   retired node chases the forward (or restarts at the root), exactly as
//!   it would chase a half-split's right link.
//! * **The parent edge dies lazily.** Retiring the `sep → child` entry is a
//!   plain stamped tombstone through the ordinary [`Msg::InsertAt`]
//!   machinery, so it inherits right-routing, relaying, and late-joiner
//!   re-relays for free. Update stamps dwarf child versions in
//!   [`entry_rank`](crate::node::entry_rank), so the tombstone permanently
//!   shadows the retired edge — a node reborn at the same separator is a
//!   *new* node reached through its left sibling's right link, never through
//!   the stale slot.
//!
//! Why retirement commutes with half-splits: both families publish their
//! link rewrites as *ordered* per-copy actions ([`Msg::RelayedAbsorb`]
//! carries the absorb epoch, splits carry entry/link versions), and
//! [`NodeCopy::merge_from`](crate::NodeCopy::merge_from) orders the right
//! link/bound by `(absorb epoch, narrowness, link version)` — a total order,
//! so copies converge no matter how split and absorb relays interleave.

use history::ObserveKind;
use simnet::{Context, ProcId};

use crate::msg::{AbsorbInfo, LinkDir, Msg};
use crate::proc::DbProc;
use crate::store::ForwardAddr;
use crate::types::{Entry, Key, Link, NodeId};

impl DbProc {
    /// Opportunistic merge check, called wherever a tombstone may have just
    /// emptied a leaf (leaf writes, relayed inserts, rerouted inserts,
    /// anti-entropy merges, and absorbs themselves — cascades).
    pub(crate) fn maybe_merge(&mut self, ctx: &mut Context<'_, Msg>, node: NodeId) {
        if !self.cfg.merge_at_empty {
            return;
        }
        let me = self.me;
        let (low, parent) = {
            let Some(copy) = self.store.get(node) else {
                return;
            };
            // Only the PC of a quiescent leaf initiates; interior nodes
            // shrink by losing child edges, never by merging themselves.
            if !copy.is_leaf() || copy.pc != me {
                return;
            }
            if copy.aas.is_some() || copy.lock.is_some() || copy.split_pending {
                return;
            }
            // The leftmost leaf has no left sibling to absorb its range;
            // parents decline leftmost children anyway, so skip the round
            // trip.
            if copy.range.low == 0 {
                return;
            }
            let Some(parent) = copy.parent else {
                return;
            };
            if copy
                .entries
                .values()
                .any(|e| !matches!(e, Entry::Tomb { .. }))
            {
                return;
            }
            (copy.range.low, parent)
        };
        // One request in flight per node; the decline/grant clears it.
        if !self.merge_pending.insert(node) {
            return;
        }
        self.metrics.merges_requested += 1;
        let msg = Msg::MergeReq {
            node: parent.node,
            child: node,
            low,
            reply_to: me,
        };
        self.send_to_node(ctx, parent.node, parent.home, msg);
    }

    /// The parent side of the grant: verify the edge and name the live left
    /// sibling. Read-only — the parent commits nothing; its edge dies later
    /// via the retire tombstone, which re-verifies nothing because the LWW
    /// stamp makes it unconditionally safe.
    pub(crate) fn handle_merge_req(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        node: NodeId,
        child: NodeId,
        low: Key,
        reply_to: ProcId,
    ) {
        if self.cfg.merge_wedge_grants {
            // Seeded livelock (`merge_wedge_grants`): swallow the request.
            // The requester's `merge_pending` bit never clears and any leaf
            // writes it parks stay parked — the liveness oracle's prey.
            return;
        }
        let Some(copy) = self.store.get(node) else {
            // Parent hint went stale (migrated or itself retired). Declining
            // is always safe: merging is pure opportunism.
            ctx.send(reply_to, Msg::MergeDecline { child });
            return;
        };
        if copy.is_leaf() {
            ctx.send(reply_to, Msg::MergeDecline { child });
            return;
        }
        if copy.range.is_right_of(low) {
            // The parent split; the edge lives in a right sibling now.
            match copy.right {
                Some(right) => {
                    self.metrics.link_chases += 1;
                    let msg = Msg::MergeReq {
                        node: right.node,
                        child,
                        low,
                        reply_to,
                    };
                    self.send_to_node(ctx, right.node, right.home, msg);
                }
                None => ctx.send(reply_to, Msg::MergeDecline { child }),
            }
            return;
        }
        if copy.range.is_left_of(low) {
            ctx.send(reply_to, Msg::MergeDecline { child });
            return;
        }
        if copy.pc != self.me {
            // Grants come from the parent's PC, whose entry map is the most
            // settled view of the child edges.
            let pc = copy.pc;
            ctx.send(
                pc,
                Msg::MergeReq {
                    node,
                    child,
                    low,
                    reply_to,
                },
            );
            return;
        }
        if copy.aas.is_some() || copy.lock.is_some() {
            // Don't thread a merge through a parent mid-split.
            self.metrics.merges_declined += 1;
            ctx.send(reply_to, Msg::MergeDecline { child });
            return;
        }
        let edge_ok = copy
            .entries
            .get(&low)
            .and_then(Entry::child)
            .is_some_and(|c| c.node == child);
        // The nearest *live* child edge strictly left of the separator. If
        // none exists the requester is (now) the leftmost child here, and
        // leftmost children are never granted: the interior node keeps at
        // least one live child, and every absorber lies strictly left.
        let left = copy.entries.range(..low).rev().find_map(|(_, e)| e.child());
        match (edge_ok, left) {
            (true, Some(lc)) => {
                let left = Link::new(lc.node, lc.home);
                ctx.send(reply_to, Msg::MergeGrant { child, left });
            }
            _ => {
                self.metrics.merges_declined += 1;
                ctx.send(reply_to, Msg::MergeDecline { child });
            }
        }
    }

    /// The parent said no (or a routing dead-end did). Clear the in-flight
    /// bit; the next tombstone that lands re-triggers [`Self::maybe_merge`].
    pub(crate) fn handle_merge_decline(&mut self, child: NodeId) {
        self.merge_pending.remove(&child);
    }

    /// The commit half: re-verify, then atomically retire the local copy,
    /// notify the other copies, hand the range to the left sibling, and
    /// tombstone the parent edge.
    pub(crate) fn handle_merge_grant(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        child: NodeId,
        left: Link,
    ) {
        self.merge_pending.remove(&child);
        let me = self.me;
        // Re-verify at commit time: the grant crossed a full round trip and
        // any client insert may have raced it. `merge_unsafe_no_reverify`
        // skips only the emptiness re-check — the injected bug under study —
        // never the structural ones.
        let ok = match self.store.get(child) {
            Some(c) => {
                c.pc == me
                    && c.is_leaf()
                    && c.aas.is_none()
                    && c.lock.is_none()
                    && !c.split_pending
                    && (self.cfg.merge_unsafe_no_reverify
                        || c.entries.values().all(|e| matches!(e, Entry::Tomb { .. })))
            }
            None => false,
        };
        if !ok {
            self.metrics.merges_declined += 1;
            return;
        }
        let (low, parent, peers, info) = {
            let copy = self.store.get(child).expect("verified above");
            // Carry the tombstones (and only them — the re-verify just
            // guaranteed nothing else exists). Under `merge_unsafe_no_
            // reverify` that guarantee is assumed rather than checked, so a
            // client insert that raced the grant round-trip dies here with
            // the node: the check-then-act bug the explorer exists to catch.
            let entries: Vec<(Key, Entry)> = copy
                .entries
                .iter()
                .filter(|(_, e)| matches!(e, Entry::Tomb { .. }))
                .map(|(k, e)| (*k, *e))
                .collect();
            let info = AbsorbInfo {
                low: copy.range.low,
                high: copy.range.high,
                right: copy.right,
                right_link_version: copy.right_link_version,
                // One past the retired node's version: supersedes any link
                // change the retired node itself ever published.
                link_version: copy.version + 1,
                entries,
                tag: 0, // issued below, outside the borrow
            };
            let peers: Vec<ProcId> = copy.peers(me).collect();
            (copy.range.low, copy.parent, peers, info)
        };
        let info = AbsorbInfo {
            tag: self.issue_tag("absorb"),
            ..info
        };

        // Atomic local retirement: the copy dies, the slot frees, and both
        // the retirement and its forwarding address go to stable storage
        // (they survive restarts — a zombie chain must never re-tile the
        // leaf chain).
        self.store.remove(child);
        self.log.lock().copy_deleted(child.raw(), me.0);
        self.retired.insert(child, left);
        self.unjoined.insert(child);
        self.store.set_forward(
            child,
            ForwardAddr {
                to: left.home,
                version: info.link_version,
                created_at: ctx.now().ticks(),
            },
        );
        self.metrics.merges_completed += 1;

        // Tell the other copies (quarantined peers get the notice from the
        // rehabilitation push instead — `push_sync` answers for retired
        // nodes with the same message).
        for peer in peers {
            if !self.suppress_if_quarantined(peer, child) {
                ctx.send(peer, Msg::RelayedRetire { node: child, left });
            }
        }
        // Anything stashed for the dead node can never be replayed by an
        // install; reroute it now.
        self.reroute_retired_stash(ctx, child, left);

        // Hand the emptied range (and its tombstones — they still shadow
        // older values at the absorber) to the left sibling.
        let msg = Msg::Absorb {
            node: left.node,
            info,
        };
        self.send_to_node(ctx, left.node, left.home, msg);

        // Retire the parent edge: a stamped tombstone through the ordinary
        // insert machinery (level 1 = parent of a leaf). Stamps dwarf child
        // versions, so the edge can never resurface.
        let stamp = self.next_stamp();
        if let Some(parent) = parent {
            let tag = self.issue_tag("retire-child");
            let msg = Msg::InsertAt {
                node: parent.node,
                level: 1,
                key: low,
                entry: Entry::Tomb { stamp },
                tag,
            };
            self.send_to_node(ctx, parent.node, parent.home, msg);
        }
    }

    /// A peer copy learns of the retirement: drop the copy, remember the
    /// absorber, and reroute any relays stranded in the stash.
    pub(crate) fn handle_relayed_retire(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        node: NodeId,
        left: Link,
    ) {
        self.retired.insert(node, left);
        self.unjoined.insert(node);
        self.pending_joins.remove(&node);
        if self.store.remove(node).is_some() {
            self.log.lock().copy_deleted(node.raw(), self.me.0);
            self.metrics.retires_applied += 1;
        }
        self.store.set_forward(
            node,
            ForwardAddr {
                to: left.home,
                version: 0,
                created_at: ctx.now().ticks(),
            },
        );
        self.reroute_retired_stash(ctx, node, left);
    }

    /// Relays stashed for a now-retired node (they raced an install that
    /// will never come). Inserts are rewritten toward the absorber — they
    /// were applied and possibly client-acknowledged at a live copy, so they
    /// must not be dropped. Splits and absorbs *of the dead node* are moot:
    /// the state they describe died with it.
    fn reroute_retired_stash(&mut self, ctx: &mut Context<'_, Msg>, node: NodeId, left: Link) {
        let Some(items) = self.stash.remove(&node) else {
            return;
        };
        for m in items {
            match m {
                Msg::RelayedInsert {
                    key, entry, tag, ..
                } => {
                    self.metrics.relays_rerouted += 1;
                    let msg = Msg::InsertAt {
                        node: left.node,
                        level: 0,
                        key,
                        entry,
                        tag,
                    };
                    self.send_to_node(ctx, left.node, left.home, msg);
                }
                _ => {
                    self.metrics.relays_discarded += 1;
                }
            }
        }
    }

    /// Route an absorb to the leaf that owns `low - 1` and apply it there.
    ///
    /// The navigation mirrors [`Msg::Descend`]'s: chase rights, drop into
    /// children, recover via forwards, restart at the root on a zombie — an
    /// absorb must land no matter how many splits, migrations, or further
    /// merges raced it.
    pub(crate) fn handle_absorb(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        node: NodeId,
        info: AbsorbInfo,
    ) {
        // Grants require a live left sibling, so the retired range never
        // starts at 0.
        debug_assert!(info.low >= 1, "leftmost leaves never retire");
        let key = info.low - 1;
        let Some(copy) = self.store.get(node) else {
            self.recover_missing_node(ctx, node, key, Msg::Absorb { node, info });
            return;
        };
        if copy.lock.is_some() {
            self.queue_behind_lock(ctx, node, Msg::Absorb { node, info });
            return;
        }
        if copy.range.is_right_of(key) {
            let Some(right) = copy.right else {
                self.restart_at_root(ctx, |root| Msg::Absorb { node: root, info });
                return;
            };
            self.metrics.link_chases += 1;
            let msg = Msg::Absorb {
                node: right.node,
                info,
            };
            self.send_to_node(ctx, right.node, right.home, msg);
            return;
        }
        if copy.range.is_left_of(key) {
            // Overshot (a stale left-pointing hop): climb back through the
            // parent, or restart if the copy is a disconnected zombie.
            let Some(up) = copy.parent.or(copy.left) else {
                self.restart_at_root(ctx, |root| Msg::Absorb { node: root, info });
                return;
            };
            self.metrics.link_chases += 1;
            let msg = Msg::Absorb {
                node: up.node,
                info,
            };
            self.send_to_node(ctx, up.node, up.home, msg);
            return;
        }
        if !copy.is_leaf() {
            let Some(child) = copy.child_for(key) else {
                self.restart_at_root(ctx, |root| Msg::Absorb { node: root, info });
                return;
            };
            let msg = Msg::Absorb {
                node: child.node,
                info,
            };
            self.send_to_node(ctx, child.node, child.home, msg);
            return;
        }
        // At the leaf owning `low - 1`. The leaf chain tiles, so the leaf
        // left of a retired `[low, high)` has `high == Some(low)` — unless
        // this absorb already applied (a recovery restart can fork the
        // message), in which case the bound moved past `low`: drop the
        // duplicate.
        if copy.range.high != Some(info.low) {
            return;
        }
        if copy.pc != self.me {
            // Initial absorbs apply at the PC, which relays them.
            let pc = copy.pc;
            ctx.send(pc, Msg::Absorb { node, info });
            return;
        }
        if self.block_if_aas(
            ctx,
            node,
            Msg::Absorb {
                node,
                info: info.clone(),
            },
        ) {
            return;
        }
        self.apply_absorb_initial(ctx, node, info);
    }

    /// Apply an absorb at the absorber's PC: widen the range, splice the
    /// right link over the dead node, relay to peers, and swing the right
    /// neighbour's left link.
    fn apply_absorb_initial(&mut self, ctx: &mut Context<'_, Msg>, node: NodeId, info: AbsorbInfo) {
        let me = self.me;
        let (count, peers) = {
            let copy = self.store.get_mut(node).expect("caller ensured resident");
            let count = copy.absorb_count + 1;
            copy.apply_absorb(&info, count);
            (count, copy.peers(me).collect::<Vec<_>>())
        };
        self.metrics.absorbs_applied += 1;
        {
            let mut log = self.log.lock();
            log.observe_initial(node.raw(), me.0, info.tag);
            log.ordered_applied(node.raw(), me.0, "absorb", count);
        }
        for peer in peers {
            if !self.suppress_if_quarantined(peer, node) {
                ctx.send(
                    peer,
                    Msg::RelayedAbsorb {
                        node,
                        info: info.clone(),
                        count,
                    },
                );
            }
        }
        // The right neighbour's left link still points at the dead node;
        // swing it here. `link_version` supersedes anything the retired node
        // published, so the ordered link-change machinery accepts it.
        if let Some(right) = info.right {
            let tag = self.issue_tag("link-change");
            let msg = Msg::LinkChange {
                node: right.node,
                dir: LinkDir::Left,
                link: Link::new(node, me),
                version: info.link_version,
                tag,
                relayed: false,
                supersedes: true,
            };
            self.send_to_node(ctx, right.node, right.home, msg);
        }
        // The absorbed tombstones may warrant a cascade (the absorber may
        // itself now be all-tomb), and in principle the widened entry map
        // could be overfull.
        self.maybe_split(ctx, node);
        self.maybe_merge(ctx, node);
    }

    /// A peer copy of the absorber applies the relayed absorb, ordered by
    /// the absorb epoch — exactly once, in issue order.
    pub(crate) fn handle_relayed_absorb(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        node: NodeId,
        info: AbsorbInfo,
        count: u64,
    ) {
        let me = self.me;
        let Some(copy) = self.store.get_mut(node) else {
            if self.retired.contains_key(&node) || self.unjoined.contains(&node) {
                self.metrics.relays_discarded += 1;
            } else {
                // Install in flight: replay on arrival.
                self.stash
                    .entry(node)
                    .or_default()
                    .push(Msg::RelayedAbsorb { node, info, count });
            }
            return;
        };
        if copy.absorb_count >= count {
            // Duplicate: an anti-entropy snapshot already carried this
            // epoch.
            self.metrics.relays_discarded += 1;
            self.log
                .lock()
                .observe(node.raw(), me.0, info.tag, ObserveKind::Discarded);
            return;
        }
        if copy.absorb_count == count - 1 && copy.range.high == Some(info.low) {
            copy.apply_absorb(&info, count);
            self.metrics.absorbs_applied += 1;
            let mut log = self.log.lock();
            log.observe(node.raw(), me.0, info.tag, ObserveKind::Applied);
            log.ordered_applied(node.raw(), me.0, "absorb", count);
            return;
        }
        // An epoch gap (an earlier relay was suppressed, or this copy was
        // synced sideways past an intermediate state). One anti-entropy pull
        // heals it: the snapshot's merge is ordered by the same epoch.
        let pc = copy.pc;
        self.metrics.relays_discarded += 1;
        self.log
            .lock()
            .observe(node.raw(), me.0, info.tag, ObserveKind::Discarded);
        if pc != me {
            ctx.send(pc, Msg::SyncReq { node });
        }
    }
}
