//! The replica-maintenance protocols.
//!
//! * [`split`] — the half-split engine shared by every protocol (sibling
//!   construction, split completion at the parent, root growth).
//! * [`sync`] — §4.1.1 synchronous splits (AAS).
//! * [`semisync`] — §4.1.2 semi-synchronous splits (and the deliberately
//!   broken `Naive` variant's relayed-split path).
//! * [`mobile`] — §4.2 single-copy mobile nodes: migration, link-changes,
//!   forwarding addresses.
//! * [`variable`] — §4.3 variable copies: join/unjoin with version-numbered
//!   membership.
//! * [`avail`] — the vigorous available-copies baseline ([2]).

pub mod avail;
pub mod mobile;
pub mod semisync;
pub mod split;
pub mod sync;
pub mod variable;
