//! The replica-maintenance protocols.
//!
//! * [`split`] — the half-split engine shared by every protocol (sibling
//!   construction, split completion at the parent, root growth).
//! * [`sync`] — §4.1.1 synchronous splits (AAS).
//! * [`semisync`] — §4.1.2 semi-synchronous splits (and the deliberately
//!   broken `Naive` variant's relayed-split path).
//! * [`mobile`] — §4.2 single-copy mobile nodes: migration, link-changes,
//!   forwarding addresses.
//! * [`variable`] — §4.3 variable copies: join/unjoin with version-numbered
//!   membership.
//! * [`avail`] — the vigorous available-copies baseline ([2]).
//! * [`merge`] — lazy merge-at-empty: grant-then-commit retirement of
//!   emptied leaves, with the absorb/retire relay family (beyond the paper,
//!   which leaves merging as future work).

pub mod avail;
pub mod merge;
pub mod mobile;
pub mod semisync;
pub mod split;
pub mod sync;
pub mod variable;
