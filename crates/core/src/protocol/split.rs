//! The half-split engine (Fig 1), shared by every protocol.
//!
//! Splitting is always performed by the node's primary copy. The engine
//! covers the protocol-independent parts: constructing the sibling and its
//! copies, completing the split at the parent, growing a new root, and
//! notifying the old right neighbour's left link.

use simnet::{Context, ProcId};

use crate::msg::{InstallReason, LinkDir, Msg, SplitInfo};
use crate::node::NodeCopy;
use crate::proc::DbProc;
use crate::types::{ChildRef, Entry, Key, KeyRange, Link, NodeId};

/// Everything the protocol layers need after the local half of a split.
pub(crate) struct SplitOutcome {
    /// Parameters to relay to the other copies.
    pub info: SplitInfo,
    /// The split node's level.
    pub level: u8,
    /// The split node's parent at split time (None = it was the root).
    pub parent: Option<Link>,
    /// The node's previous right neighbour (its left link must be updated).
    pub old_right: Option<Link>,
    /// The other copies of the split node.
    pub peers: Vec<ProcId>,
}

impl DbProc {
    /// Perform the local half-split of `node` (which this processor is the
    /// PC of): move the upper half into a new sibling, install the sibling
    /// locally, ship sibling copies to the replication set, and link the
    /// sibling into the node list.
    ///
    /// Does *not* relay the split or complete it at the parent — that part
    /// is protocol-specific.
    pub(crate) fn half_split_local(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        node: NodeId,
    ) -> SplitOutcome {
        let sib_id = self.store.mint_node_id(self.me);
        let me = self.me;

        let (info, sib, level, parent, old_right, peers) = {
            let copy = self.store.get_mut(node).expect("PC holds its copy");
            debug_assert_eq!(copy.pc, me, "only the PC splits");
            let old_right = copy.right;
            let parent = copy.parent;
            let level = copy.level;
            // §4.2/§4.3: the sibling starts one version past the half-split
            // node's. The node's own version is membership/migration state
            // and does not advance on a split.
            let sib_version = copy.version + 1;

            let (sep, sib_range, sib_entries) = copy.half_split();
            let mut sib = NodeCopy::new(sib_id, level, sib_range, me);
            sib.entries = sib_entries;
            sib.version = sib_version;
            sib.right = old_right;
            sib.left = Some(Link::new(node, me));
            sib.parent = parent;
            sib.copies = copy.copies.clone();
            sib.join_versions = vec![0; sib.copies.len()];

            copy.right = Some(Link::new(sib_id, me));
            copy.right_link_version = copy.right_link_version.max(sib_version);

            let info = SplitInfo {
                sep,
                sib: sib_id,
                sib_home: me,
                sib_version,
            };
            let peers: Vec<ProcId> = copy.peers(me).collect();
            (info, sib, level, parent, old_right, peers)
        };

        // Install the sibling locally and ship its other copies.
        {
            let mut log = self.log.lock();
            for &p in &sib.copies {
                log.copy_created(sib_id.raw(), p.0, []);
            }
        }
        let snapshot = sib.snapshot();
        for &p in &sib.copies {
            if p != me {
                ctx.send(
                    p,
                    Msg::InstallCopy {
                        snapshot: Box::new(snapshot.clone()),
                        reason: InstallReason::SiblingCopy,
                        covered: Vec::new(),
                    },
                );
            }
        }
        self.store.install(sib);
        self.metrics.splits_initiated += 1;

        SplitOutcome {
            info,
            level,
            parent,
            old_right,
            peers,
        }
    }

    /// Complete a split: insert the sibling pointer into the parent (or grow
    /// a new root) and update the old right neighbour's left link.
    pub(crate) fn complete_split(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        node: NodeId,
        out: &SplitOutcome,
    ) {
        let sib_ref = ChildRef {
            node: out.info.sib,
            home: out.info.sib_home,
            version: out.info.sib_version,
        };
        match out.parent {
            Some(parent) => {
                let tag = self.issue_tag("add-child");
                let msg = Msg::InsertAt {
                    node: parent.node,
                    level: out.level + 1,
                    key: out.info.sep,
                    entry: Entry::Child(sib_ref),
                    tag,
                };
                self.send_to_node(ctx, parent.node, parent.home, msg);
            }
            None => self.grow_new_root(ctx, node, out.info.sep, sib_ref, out.level),
        }
        if let Some(old_right) = out.old_right {
            let tag = self.issue_tag("link-change");
            let msg = Msg::LinkChange {
                node: old_right.node,
                dir: LinkDir::Left,
                link: Link::new(out.info.sib, out.info.sib_home),
                version: out.info.sib_version,
                tag,
                relayed: false,
                supersedes: true,
            };
            self.send_to_node(ctx, old_right.node, old_right.home, msg);
        }
    }

    /// The split node was the root: create a new root one level up,
    /// replicated everywhere, and broadcast the root change.
    fn grow_new_root(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        old_root: NodeId,
        sep: Key,
        sib: ChildRef,
        old_level: u8,
    ) {
        let me = self.me;
        let root_id = self.store.mint_node_id(me);
        let level = old_level + 1;
        let low = self.store.get(old_root).map(|c| c.range.low).unwrap_or(0);

        let mut root = NodeCopy::new(root_id, level, KeyRange::new(low, None), me);
        root.copies = (0..self.n_procs).map(ProcId).collect();
        root.join_versions = vec![0; root.copies.len()];
        root.upsert(
            low,
            Entry::Child(ChildRef {
                node: old_root,
                home: me,
                version: 0,
            }),
        );
        root.upsert(sep, Entry::Child(sib));

        {
            let mut log = self.log.lock();
            for &p in &root.copies {
                log.copy_created(root_id.raw(), p.0, []);
            }
        }
        let snapshot = root.snapshot();
        for p in self.all_other_procs().collect::<Vec<_>>() {
            ctx.send(
                p,
                Msg::InstallCopy {
                    snapshot: Box::new(snapshot.clone()),
                    reason: InstallReason::Bootstrap,
                    covered: Vec::new(),
                },
            );
            ctx.send(
                p,
                Msg::NewRoot {
                    root: root_id,
                    level,
                    home: me,
                    children: [old_root, sib.node],
                },
            );
        }
        self.store.install(root);
        self.store.set_root(root_id, level, me);
        // Re-parent the local copies of both halves.
        for child in [old_root, sib.node] {
            if let Some(c) = self.store.get_mut(child) {
                c.parent = Some(Link::new(root_id, me));
            }
        }
    }
}
