//! §4.2 — single-copy mobile nodes.
//!
//! A node (in practice a leaf, for data balancing [14]) migrates by copying
//! itself to the destination with an incremented version number, informing
//! its neighbours with version-ordered link-change actions, and deleting the
//! original. A forwarding address may be left behind as an optimization; it
//! is never required — a message that arrives for a missing node recovers by
//! restarting at a close local node (see `nav.rs`).

use history::ObserveKind;
use simnet::{Context, ProcId};

use crate::msg::{InstallReason, LinkDir, Msg};
use crate::proc::{DbProc, TIMER_FORWARD_GC};
use crate::store::ForwardAddr;
use crate::types::{Key, Link, NodeId};

impl DbProc {
    /// Owner side: migrate `node` to `dest`.
    ///
    /// Only sole-copy nodes migrate (replicated interior nodes change
    /// membership via join/unjoin instead).
    pub(crate) fn handle_migrate(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        node: NodeId,
        dest: ProcId,
    ) {
        if dest == self.me {
            return;
        }
        let Some(copy) = self.store.get(node) else {
            return; // already gone (racing balancer decisions)
        };
        if copy.copies.len() != 1 {
            return;
        }
        let mut copy = self.store.remove(node).expect("checked above");
        copy.version += 1;
        copy.pc = dest;
        copy.copies = vec![dest];
        copy.join_versions = vec![0];
        let covered = self.log.lock().copy_coverage(node.raw(), self.me.0);
        self.log.lock().copy_deleted(node.raw(), self.me.0);

        if self.cfg.forwarding {
            self.store.set_forward(
                node,
                ForwardAddr {
                    to: dest,
                    version: copy.version,
                    created_at: ctx.now().ticks(),
                },
            );
            ctx.set_timer(self.cfg.forwarding_ttl, TIMER_FORWARD_GC);
        }
        self.metrics.migrations_out += 1;
        ctx.send(
            dest,
            Msg::InstallCopy {
                snapshot: Box::new(copy.snapshot()),
                reason: InstallReason::Migration { from: self.me },
                covered,
            },
        );
    }

    /// Destination side: the node arrived — tell the neighbours where it
    /// lives now (link-changes are ordered by the node's version, §4.2).
    pub(crate) fn after_migration_in(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        node: NodeId,
        _from: ProcId,
    ) {
        let (version, left, right, parent, low, children) = {
            let copy = self.store.get(node).expect("just installed");
            let children: Vec<Link> = copy
                .entries
                .values()
                .filter_map(|e| e.child())
                .map(|c| Link::new(c.node, c.home))
                .collect();
            (
                copy.version,
                copy.left,
                copy.right,
                copy.parent,
                copy.range.low,
                children,
            )
        };
        let here = Link::new(node, self.me);
        if let Some(l) = left {
            let tag = self.issue_tag("link-change");
            ctx.send(
                l.home,
                Msg::LinkChange {
                    node: l.node,
                    dir: LinkDir::Right,
                    link: here,
                    version,
                    tag,
                    relayed: false,
                    supersedes: false,
                },
            );
        }
        if let Some(r) = right {
            let tag = self.issue_tag("link-change");
            ctx.send(
                r.home,
                Msg::LinkChange {
                    node: r.node,
                    dir: LinkDir::Left,
                    link: here,
                    version,
                    tag,
                    relayed: false,
                    supersedes: false,
                },
            );
        }
        if let Some(p) = parent {
            let tag = self.issue_tag("child-home");
            let msg = Msg::ChildHomeChange {
                node: p.node,
                sep: low,
                child: node,
                home: self.me,
                version,
                tag,
                relayed: false,
            };
            self.send_to_node(ctx, p.node, p.home, msg);
        }
        for child in children {
            let tag = self.issue_tag("link-change");
            ctx.send(
                child.home,
                Msg::LinkChange {
                    node: child.node,
                    dir: LinkDir::Parent,
                    link: here,
                    version,
                    tag,
                    relayed: false,
                    supersedes: false,
                },
            );
        }
    }

    /// Apply a version-ordered link change (§4.2): update the link only if
    /// the action's version exceeds the link's recorded version; otherwise
    /// the action is stale and history is "rewritten" by skipping it.
    ///
    /// The initial form routes to the node's PC, which applies it and relays
    /// to the other copies.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_link_change(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        node: NodeId,
        dir: LinkDir,
        link: Link,
        version: u64,
        tag: u64,
        relayed: bool,
        supersedes: bool,
    ) {
        let remake = |relayed| Msg::LinkChange {
            node,
            dir,
            link,
            version,
            tag,
            relayed,
            supersedes,
        };
        if !self.store.contains(node) {
            // The target itself migrated away, left, or never arrived here.
            // Follow a forwarding address if one exists; otherwise drop —
            // link changes refresh routing hints, which misnavigation
            // recovery tolerates being stale (§4.2: forwarding addresses
            // "are not required for correctness").
            // A retirement's forward aims at the absorber's *home*, which
            // may be this processor — following it would loop the message
            // back here forever. The retired node's links are moot anyway,
            // so a self-forward drops like a missing forward.
            match self.store.forward_for(node) {
                Some(fwd) if fwd.to != self.me => {
                    self.metrics.forwards_followed += 1;
                    ctx.send(fwd.to, remake(relayed));
                }
                _ => self.log.lock().observe_global(tag),
            }
            return;
        }
        let me = self.me;
        let pc = self.store.get(node).map(|c| c.pc).expect("resident");
        if !relayed && me != pc {
            ctx.send(pc, remake(false));
            return;
        }
        let (applied, peers) = {
            let copy = self.store.get_mut(node).expect("checked");
            let (slot, slot_version) = match dir {
                LinkDir::Left => (&mut copy.left, &mut copy.left_link_version),
                LinkDir::Right => (&mut copy.right, &mut copy.right_link_version),
                LinkDir::Parent => (&mut copy.parent, &mut copy.parent_link_version),
            };
            // Ordered-action rule (§4.2): apply only if the version exceeds
            // the slot's. Home refreshes additionally require the slot to
            // still point at the same node — a refresh from a superseded
            // neighbour (whose slot a split already re-targeted) is stale
            // even if its version number is numerically larger, because
            // versions of different nodes are not comparable.
            let same_target = slot.map(|l| l.node) == Some(link.node);
            let applied = if version > *slot_version && (supersedes || same_target) {
                *slot_version = version;
                *slot = Some(link);
                true
            } else {
                false
            };
            let peers: Vec<ProcId> = copy.peers(me).collect();
            (applied, peers)
        };
        {
            let mut log = self.log.lock();
            log.observe(node.raw(), me.0, tag, ObserveKind::Applied);
            if !relayed {
                log.observe_initial(node.raw(), me.0, tag);
            }
            if applied {
                log.ordered_applied(node.raw(), me.0, dir.class(), version);
            }
        }
        // The PC relays link changes to the other copies (a lazy update:
        // version ordering makes relay order irrelevant).
        if !relayed {
            for p in peers {
                ctx.send(p, remake(true));
            }
        }
    }

    /// Apply a child-home change at a copy of the parent: the child at `sep`
    /// now lives on `home`. Ordered per entry by the child's version.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_child_home_change(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        node: NodeId,
        sep: Key,
        child: NodeId,
        home: ProcId,
        version: u64,
        tag: u64,
        relayed: bool,
    ) {
        let remake = |relayed| Msg::ChildHomeChange {
            node,
            sep,
            child,
            home,
            version,
            tag,
            relayed,
        };
        let Some(copy) = self.store.get(node) else {
            // Child-home changes refresh a routing hint; if we no longer
            // hold the parent (unjoined, or the hint raced a membership
            // change), drop it — stale hints are recovered by
            // misnavigation handling.
            let _ = remake;
            self.log.lock().observe_global(tag);
            return;
        };
        // The child's range may have been split away from this parent node.
        if copy.range.is_right_of(sep) {
            if !relayed {
                let right = copy.right.expect("sep beyond rightmost parent");
                self.metrics.link_chases += 1;
                let msg = Msg::ChildHomeChange {
                    node: right.node,
                    sep,
                    child,
                    home,
                    version,
                    tag,
                    relayed: false,
                };
                self.send_to_node(ctx, right.node, right.home, msg);
            }
            // Relayed form: the split relay carried the entry's fate.
            return;
        }
        let me = self.me;
        let pc = copy.pc;
        if !relayed && me != pc {
            // Route the initial form through the PC so exactly one copy
            // relays it.
            ctx.send(pc, remake(false));
            return;
        }
        {
            let copy = self.store.get_mut(node).expect("checked");
            if let Some(crate::types::Entry::Child(cr)) = copy.entries.get_mut(&sep) {
                if cr.node == child && version > cr.version {
                    cr.home = home;
                    cr.version = version;
                }
            }
        }
        {
            let mut log = self.log.lock();
            log.observe(node.raw(), me.0, tag, ObserveKind::Applied);
            if !relayed {
                log.observe_initial(node.raw(), me.0, tag);
            }
        }
        if !relayed {
            let peers: Vec<ProcId> = self
                .store
                .get(node)
                .map(|c| c.peers(me).collect())
                .unwrap_or_default();
            for p in peers {
                ctx.send(p, remake(true));
            }
        }
        // §4.3: losing a child may mean this processor should leave the
        // parent's replication.
        if self.cfg.variable_copies {
            self.maybe_unjoin(ctx, node);
        }
    }
}
