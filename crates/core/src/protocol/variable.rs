//! §4.3 — variable copies: processors join and unjoin the replication of
//! interior nodes as leaves migrate, preserving the dB-tree property (a
//! processor that owns a leaf holds every node on the root-to-leaf path).
//!
//! The PC registers all joins and unjoins, incrementing the node's version
//! for each; insert relays carry the version their sender knew, so the PC
//! can forward them to members that joined later (the Fig 6 fix, toggled by
//! `TreeConfig::join_version_relay`).

use history::ObserveKind;
use simnet::{Context, ProcId};

use crate::msg::{InstallReason, Msg};
use crate::proc::DbProc;
use crate::types::{Link, NodeId};

impl DbProc {
    /// After acquiring a leaf (or joining a node), make sure we replicate
    /// the rest of the path to the root: join `parent` if we don't hold it.
    pub(crate) fn ensure_path_replication(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        parent: Option<Link>,
    ) {
        let Some(parent) = parent else {
            return; // reached the root
        };
        if self.store.contains(parent.node) {
            return; // path already held from here up (dB-tree invariant)
        }
        if !self.pending_joins.insert(parent.node) {
            return; // a join for this node is already in flight
        }
        // Clear the departed flag *now*: once the PC registers the join,
        // other members may relay updates to us ahead of the grant arriving
        // (different channels) — those must stash, not be discarded.
        self.unjoined.remove(&parent.node);
        ctx.send(
            parent.home,
            Msg::Join {
                node: parent.node,
                joiner: self.me,
            },
        );
    }

    /// PC: admit `joiner` to the replication of `node`.
    pub(crate) fn handle_join(&mut self, ctx: &mut Context<'_, Msg>, node: NodeId, joiner: ProcId) {
        let me = self.me;
        let Some(copy) = self.store.get_mut(node) else {
            return; // stale join (e.g. the node's PC view was wrong): drop
        };
        debug_assert_eq!(copy.pc, me, "joins are registered at the PC");
        if copy.copies.contains(&joiner) {
            // Already a member (duplicate join from racing migrations):
            // resend the snapshot so the joiner converges.
            let snapshot = Box::new(copy.snapshot());
            let covered = self.log.lock().copy_coverage(node.raw(), me.0);
            ctx.send(
                joiner,
                Msg::InstallCopy {
                    snapshot,
                    reason: InstallReason::JoinGrant,
                    covered,
                },
            );
            return;
        }
        copy.version += 1;
        let version = copy.version;
        copy.add_member(joiner, version);
        let snapshot = Box::new(copy.snapshot());
        let peers: Vec<ProcId> = copy.peers(me).filter(|&p| p != joiner).collect();

        let tag = self.issue_tag("join");
        let covered = {
            let mut log = self.log.lock();
            log.observe_initial(node.raw(), me.0, tag);
            let covered = log.copy_coverage(node.raw(), me.0);
            log.copy_created(node.raw(), joiner.0, covered.clone());
            covered
        };
        ctx.send(
            joiner,
            Msg::InstallCopy {
                snapshot,
                reason: InstallReason::JoinGrant,
                covered,
            },
        );
        for p in peers {
            ctx.send(
                p,
                Msg::RelayedJoin {
                    node,
                    member: joiner,
                    version,
                    tag,
                },
            );
        }
    }

    /// Non-PC copy: learn about a new member.
    pub(crate) fn handle_relayed_join(
        &mut self,
        node: NodeId,
        member: ProcId,
        version: u64,
        tag: u64,
    ) {
        let Some(copy) = self.store.get_mut(node) else {
            if !self.unjoined.contains(&node) {
                self.stash.entry(node).or_default().push(Msg::RelayedJoin {
                    node,
                    member,
                    version,
                    tag,
                });
            }
            return;
        };
        copy.add_member(member, version);
        copy.version = copy.version.max(version);
        self.log
            .lock()
            .observe(node.raw(), self.me.0, tag, ObserveKind::Applied);
    }

    /// A member deletes its copy and leaves.
    pub(crate) fn handle_unjoin(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        node: NodeId,
        leaver: ProcId,
    ) {
        let me = self.me;
        let Some(copy) = self.store.get_mut(node) else {
            return;
        };
        debug_assert_eq!(copy.pc, me, "unjoins are registered at the PC");
        if !copy.copies.contains(&leaver) {
            return;
        }
        copy.version += 1;
        let version = copy.version;
        copy.remove_member(leaver);
        let peers: Vec<ProcId> = copy.peers(me).collect();
        let tag = self.issue_tag("unjoin");
        self.log.lock().observe_initial(node.raw(), me.0, tag);
        self.metrics.unjoins += 1;
        for p in peers {
            ctx.send(
                p,
                Msg::RelayedUnjoin {
                    node,
                    member: leaver,
                    version,
                    tag,
                },
            );
        }
    }

    /// Non-PC copy: learn about a departure.
    pub(crate) fn handle_relayed_unjoin(
        &mut self,
        node: NodeId,
        member: ProcId,
        version: u64,
        tag: u64,
    ) {
        let Some(copy) = self.store.get_mut(node) else {
            if !self.unjoined.contains(&node) {
                self.stash
                    .entry(node)
                    .or_default()
                    .push(Msg::RelayedUnjoin {
                        node,
                        member,
                        version,
                        tag,
                    });
            }
            return;
        };
        copy.remove_member(member);
        copy.version = copy.version.max(version);
        self.log
            .lock()
            .observe(node.raw(), self.me.0, tag, ObserveKind::Applied);
    }

    /// Leave `node`'s replication if this processor no longer holds any of
    /// its children (the dB-tree invariant in reverse), recursively upward.
    pub(crate) fn maybe_unjoin(&mut self, ctx: &mut Context<'_, Msg>, node: NodeId) {
        let me = self.me;
        let (should_leave, pc, parent) = {
            let Some(copy) = self.store.get(node) else {
                return;
            };
            if copy.pc == me || copy.is_leaf() {
                return; // the PC never leaves; leaves are owned, not joined
            }
            let holds_child = copy.entries.values().any(|e| {
                e.child()
                    .map(|c| c.home == me || self.store.contains(c.node))
                    .unwrap_or(false)
            });
            (!holds_child, copy.pc, copy.parent)
        };
        if !should_leave {
            return;
        }
        self.store.remove(node);
        self.unjoined.insert(node);
        self.log.lock().copy_deleted(node.raw(), me.0);
        ctx.send(pc, Msg::Unjoin { node, leaver: me });
        // Losing this copy may strand the level above, too.
        if let Some(parent) = parent {
            self.maybe_unjoin(ctx, parent.node);
        }
    }
}
