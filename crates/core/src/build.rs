//! Bulk construction of an initial dB-tree across a set of processors.
//!
//! The builder lays out a balanced B-link tree over the initial keys,
//! assigns leaves to processors by contiguous range partition (the locality
//! the dB-tree's replication policy exploits, Fig 2), computes copy sets per
//! the placement policy, and installs the copies directly into each
//! processor's store — no bootstrap messages are needed.

use std::sync::Arc;

use history::HistoryLog;
use parking_lot::Mutex;
use simnet::ProcId;

use crate::config::{Placement, TreeConfig};
use crate::node::NodeCopy;
use crate::proc::DbProc;
use crate::types::{ChildRef, Entry, Key, KeyRange, Link, NodeId};

/// What to build.
#[derive(Clone, Debug)]
pub struct BuildSpec {
    /// Initial keys (each preloaded with value = key).
    pub keys: Vec<Key>,
    /// Cluster size.
    pub n_procs: u32,
    /// Tree configuration.
    pub cfg: TreeConfig,
    /// Entries per initial node (defaults to ~⅔ of fanout when 0).
    pub fill: usize,
}

impl BuildSpec {
    /// A spec preloading `keys` onto `n_procs` processors.
    pub fn new(keys: Vec<Key>, n_procs: u32, cfg: TreeConfig) -> Self {
        BuildSpec {
            keys,
            n_procs,
            cfg,
            fill: 0,
        }
    }
}

struct ProtoNode {
    id: NodeId,
    level: u8,
    range: KeyRange,
    entries: Vec<(Key, Entry)>,
    copies: Vec<ProcId>,
    pc: ProcId,
}

/// Build the processors with the initial tree installed. Returns the procs
/// (index = ProcId) and the shared history log.
pub fn build_procs(spec: &BuildSpec) -> (Vec<DbProc>, Arc<Mutex<HistoryLog>>) {
    assert!(spec.n_procs > 0, "need at least one processor");
    let n = spec.n_procs;
    let log = Arc::new(Mutex::new(if spec.cfg.record_history {
        HistoryLog::new()
    } else {
        HistoryLog::disabled()
    }));
    let mut procs: Vec<DbProc> = (0..n)
        .map(|i| DbProc::new(ProcId(i), n, spec.cfg.clone(), Arc::clone(&log)))
        .collect();

    let fill = if spec.fill == 0 {
        (spec.cfg.fanout * 2 / 3).max(2)
    } else {
        spec.fill.min(spec.cfg.fanout).max(1)
    };

    let mut keys = spec.keys.clone();
    keys.sort_unstable();
    keys.dedup();

    // ---- leaves -----------------------------------------------------------
    let n_leaves = keys.len().div_ceil(fill).max(1);
    let mut levels: Vec<Vec<ProtoNode>> = Vec::new();
    let mut leaves: Vec<ProtoNode> = Vec::with_capacity(n_leaves);
    for i in 0..n_leaves {
        let chunk: Vec<Key> = keys.iter().copied().skip(i * fill).take(fill).collect();
        let low = if i == 0 {
            0
        } else {
            chunk.first().copied().unwrap_or(0)
        };
        // Leaf homes: contiguous partition of the leaf sequence.
        let home = ProcId(((i as u64 * n as u64) / n_leaves as u64) as u32);
        let id = procs[home.index()].store.mint_node_id(home);
        let copies = match spec.cfg.placement {
            Placement::PathReplication => vec![home],
            Placement::Uniform { copies } => (0..copies.min(n as usize) as u32)
                .map(|k| ProcId((home.0 + k) % n))
                .collect(),
        };
        leaves.push(ProtoNode {
            id,
            level: 0,
            range: KeyRange::new(low, None), // highs fixed below
            entries: chunk
                .into_iter()
                .map(|k| (k, Entry::Val { value: k, stamp: 0 }))
                .collect(),
            copies,
            pc: home,
        });
    }
    fix_highs(&mut leaves);
    levels.push(leaves);

    // ---- interior levels ---------------------------------------------------
    while levels.last().expect("at least leaves").len() > 1 {
        let children = levels.last().expect("nonempty");
        let n_parents = children.len().div_ceil(fill);
        let is_root_level = n_parents == 1;
        let mut parents = Vec::with_capacity(n_parents);
        for i in 0..n_parents {
            let group = &children[i * fill..((i + 1) * fill).min(children.len())];
            let level = group[0].level + 1;
            let low = group[0].range.low;
            let mut copies: Vec<ProcId> = match spec.cfg.placement {
                Placement::PathReplication => {
                    if is_root_level {
                        (0..n).map(ProcId).collect()
                    } else {
                        let mut set: Vec<ProcId> = Vec::new();
                        for child in group {
                            for &p in &child.copies {
                                if !set.contains(&p) {
                                    set.push(p);
                                }
                            }
                        }
                        set.sort_unstable();
                        set
                    }
                }
                Placement::Uniform { copies } => {
                    let home = group[0].pc;
                    (0..copies.min(n as usize) as u32)
                        .map(|k| ProcId((home.0 + k) % n))
                        .collect()
                }
            };
            if copies.is_empty() {
                copies.push(group[0].pc);
            }
            let pc = group[0].pc;
            let pc = if copies.contains(&pc) { pc } else { copies[0] };
            let id = procs[pc.index()].store.mint_node_id(pc);
            let entries: Vec<(Key, Entry)> = group
                .iter()
                .map(|c| {
                    (
                        c.range.low,
                        Entry::Child(ChildRef {
                            node: c.id,
                            home: c.pc,
                            version: 0,
                        }),
                    )
                })
                .collect();
            parents.push(ProtoNode {
                id,
                level,
                range: KeyRange::new(low, None),
                entries,
                copies,
                pc,
            });
        }
        fix_highs(&mut parents);
        levels.push(parents);
    }

    // ---- install -----------------------------------------------------------
    let root = {
        let top = &levels.last().expect("root level")[0];
        (top.id, top.level, top.pc)
    };
    {
        let mut log = log.lock();
        for level in &levels {
            for node in level {
                for &p in &node.copies {
                    log.copy_created(node.id.raw(), p.0, []);
                }
            }
        }
    }
    for (li, level) in levels.iter().enumerate() {
        for (i, node) in level.iter().enumerate() {
            let right = level.get(i + 1).map(|next| Link::new(next.id, next.pc));
            let left = if i > 0 {
                Some(Link::new(level[i - 1].id, level[i - 1].pc))
            } else {
                None
            };
            let parent = levels.get(li + 1).map(|parents| {
                let p = &parents[i / fill];
                Link::new(p.id, p.pc)
            });
            let mut proto = NodeCopy::new(node.id, node.level, node.range, node.pc);
            proto.entries = node.entries.iter().cloned().collect();
            proto.right = right;
            proto.left = left;
            proto.parent = parent;
            proto.copies = node.copies.clone();
            proto.join_versions = vec![0; node.copies.len()];
            for &p in &node.copies {
                procs[p.index()].store.install(proto.clone());
            }
        }
    }
    for p in &mut procs {
        p.store.set_root(root.0, root.1, root.2);
    }
    (procs, log)
}

/// Set each node's high bound to its successor's low (the last node keeps
/// an unbounded high).
fn fix_highs(nodes: &mut [ProtoNode]) {
    for i in 0..nodes.len() {
        let high = nodes.get(i + 1).map(|n| n.range.low);
        nodes[i].range = KeyRange::new(nodes[i].range.low, high);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolKind;

    fn spec(nkeys: u64, n_procs: u32, cfg: TreeConfig) -> BuildSpec {
        BuildSpec::new((0..nkeys).map(|k| k * 10).collect(), n_procs, cfg)
    }

    #[test]
    fn builds_path_replicated_tree() {
        let (procs, _log) = build_procs(&spec(100, 4, TreeConfig::default()));
        assert_eq!(procs.len(), 4);
        // Every proc knows the root and stores a copy of it.
        let root = procs[0].store.root().expect("root set");
        for p in &procs {
            assert_eq!(p.store.root(), Some(root));
            assert!(p.store.contains(root), "root replicated everywhere");
        }
        // Leaves are single-copy: total leaf copies == number of leaves.
        let leaf_copies: usize = procs.iter().map(|p| p.store.leaf_count()).sum();
        let distinct: std::collections::HashSet<_> = procs
            .iter()
            .flat_map(|p| p.store.iter().filter(|c| c.is_leaf()).map(|c| c.id))
            .collect();
        assert_eq!(leaf_copies, distinct.len());
    }

    #[test]
    fn builds_uniform_copies() {
        let cfg = TreeConfig::fixed_copies(ProtocolKind::SemiSync, 3);
        let (procs, _log) = build_procs(&spec(50, 5, cfg));
        // Every node (leaves included) has exactly 3 copies.
        let mut counts: std::collections::HashMap<NodeId, usize> = Default::default();
        for p in &procs {
            for c in p.store.iter() {
                *counts.entry(c.id).or_default() += 1;
            }
        }
        assert!(!counts.is_empty());
        assert!(counts.values().all(|&c| c == 3), "{counts:?}");
    }

    #[test]
    fn empty_tree_still_has_a_leaf_root() {
        let (procs, _log) = build_procs(&BuildSpec::new(vec![], 2, TreeConfig::default()));
        let root = procs[0].store.root().expect("root");
        let copy = procs
            .iter()
            .find_map(|p| p.store.get(root))
            .expect("root stored");
        assert!(copy.is_leaf());
        assert_eq!(copy.range, KeyRange::ALL);
    }

    #[test]
    fn ranges_tile_per_level() {
        let (procs, _log) = build_procs(&spec(200, 3, TreeConfig::default()));
        // Collect distinct nodes.
        let mut by_level: std::collections::BTreeMap<u8, Vec<(u64, Option<u64>)>> =
            Default::default();
        let mut seen = std::collections::HashSet::new();
        for p in &procs {
            for c in p.store.iter() {
                if seen.insert(c.id) {
                    by_level
                        .entry(c.level)
                        .or_default()
                        .push((c.range.low, c.range.high));
                }
            }
        }
        for (level, mut ranges) in by_level {
            ranges.sort_unstable();
            assert_eq!(ranges[0].0, 0, "level {level} starts at 0");
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, Some(w[1].0), "level {level} tiles");
            }
            assert_eq!(ranges.last().unwrap().1, None, "level {level} ends at inf");
        }
    }
}
