//! Protocol messages — the paper's *actions*, as network payloads.
//!
//! Naming follows §3's conventions: initial actions are distinct variants
//! from their relayed forms (capital-I `InsertAt` vs lowercase-i
//! `RelayedInsert`), and every update carries the history tag that identifies
//! its uniform action.

use simnet::{Payload, ProcId};

use crate::node::NodeSnapshot;
use crate::types::{Entry, Intent, Key, Link, NodeId, OpId, Outcome, Value};

/// The split description a PC relays to the other copies.
#[derive(Clone, Copy, Debug)]
pub struct SplitInfo {
    /// Split point: the node's new exclusive upper bound.
    pub sep: Key,
    /// The new right sibling.
    pub sib: NodeId,
    /// The sibling's PC.
    pub sib_home: ProcId,
    /// The sibling's starting version (§4.2/§4.3: one greater than the
    /// half-split node's).
    pub sib_version: u64,
}

/// Everything the left sibling needs to absorb a retired node's range:
/// the reverse of a [`SplitInfo`]. Produced once at the merge commit and
/// carried unchanged by the initial [`Msg::Absorb`] and every
/// [`Msg::RelayedAbsorb`].
#[derive(Clone, Debug)]
pub struct AbsorbInfo {
    /// The retired node's low key — must equal the absorber's exclusive
    /// upper bound (the absorb is routed to the leaf owning `low - 1`).
    pub low: Key,
    /// The retired node's upper bound: the absorber's new upper bound.
    pub high: Option<Key>,
    /// The retired node's right link: the absorber's new right link.
    pub right: Option<Link>,
    /// The retired node's right-link version (joins into the absorber's).
    pub right_link_version: u64,
    /// Version for the follow-up left-[`Msg::LinkChange`] at the right
    /// neighbour (one past the retired node's version, so it supersedes
    /// the link the retired node installed at its own creation).
    pub link_version: u64,
    /// The retired node's residual entries — tombstones only, carried so
    /// later re-inserts still lose/win by stamp against them (LWW).
    pub entries: Vec<(Key, Entry)>,
    /// History tag of the absorb action.
    pub tag: u64,
}

/// Which link a link-change action targets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkDir {
    /// The left-sibling link.
    Left,
    /// The right-sibling link.
    Right,
    /// The parent link.
    Parent,
}

impl LinkDir {
    /// Ordered-class label for the history log.
    pub fn class(self) -> &'static str {
        match self {
            LinkDir::Left => "link-left",
            LinkDir::Right => "link-right",
            LinkDir::Parent => "link-parent",
        }
    }
}

/// All dB-tree protocol messages.
#[derive(Clone, Debug)]
pub enum Msg {
    // ---- client plane -------------------------------------------------
    /// A client submits an operation to its local processor.
    Client {
        /// Operation id (driver-minted).
        op: OpId,
        /// The key.
        key: Key,
        /// Search or insert.
        intent: Intent,
    },
    /// Operation completed; sent to `ProcId::EXTERNAL`.
    Done(Outcome),

    // ---- navigation ----------------------------------------------------
    /// Descend: perform the operation's next action at `node`.
    Descend {
        /// Operation id.
        op: OpId,
        /// The key.
        key: Key,
        /// Search or insert.
        intent: Intent,
        /// The node to act on.
        node: NodeId,
        /// Nodes visited so far.
        hops: u32,
        /// Right-link chases so far.
        chases: u32,
    },

    /// A client range scan: collect up to `limit` live entries starting at
    /// `from`.
    ClientScan {
        /// Operation id.
        op: OpId,
        /// Inclusive start key.
        from: Key,
        /// Maximum entries to return.
        limit: u32,
    },
    /// A scan in progress: walking the leaf chain through right links,
    /// accumulating live entries (tombstones skipped).
    Scan {
        /// Operation id.
        op: OpId,
        /// Next key of interest (lower bound for this step).
        key: Key,
        /// Entries still wanted.
        remaining: u32,
        /// The node to act on.
        node: NodeId,
        /// Accumulated results.
        acc: Vec<(Key, Value)>,
        /// Nodes visited.
        hops: u32,
    },
    /// Scan results; sent to `ProcId::EXTERNAL`.
    ScanResult {
        /// Operation id.
        op: OpId,
        /// The collected entries, in key order.
        items: Vec<(Key, Value)>,
        /// Nodes visited.
        hops: u32,
    },

    // ---- lazy updates ---------------------------------------------------
    /// Initial insert of an entry into a node, outside the client plane:
    /// split completions (child pointers into parents) and the semisync
    /// history-rewrite re-issues. Re-routed right if out of range.
    InsertAt {
        /// The node to insert into (a hint — the action is re-routed by
        /// `key` and `level` if the hint is stale).
        node: NodeId,
        /// The tree level the insert belongs to (0 = leaves).
        level: u8,
        /// The key (a separator for child entries).
        key: Key,
        /// The entry.
        entry: crate::types::Entry,
        /// History tag of this update.
        tag: u64,
    },
    /// Relayed insert: propagate an applied insert to the other copies.
    RelayedInsert {
        /// The node.
        node: NodeId,
        /// The key inserted.
        key: Key,
        /// The entry (value or child ref).
        entry: crate::types::Entry,
        /// History tag (same as the initial action's).
        tag: u64,
        /// Node version at the initial copy when it applied the insert
        /// (§4.3: lets the PC forward to later joiners).
        version: u64,
        /// Span of the client operation that produced the insert, carried
        /// so the relay stays attributable after it leaves the initial
        /// action's context (piggyback buffers outlive their action).
        span: Option<u64>,
    },
    /// A batch of relayed inserts (piggybacking, §1.1).
    RelayBatch(Vec<RelayedItem>),

    // ---- synchronous split protocol (§4.1.1) ---------------------------
    /// AAS start: block initial inserts at the copy.
    SplitStart {
        /// The node being split.
        node: NodeId,
    },
    /// Copy acknowledges the AAS.
    SplitAck {
        /// The node being split.
        node: NodeId,
    },
    /// AAS end: apply the split and unblock.
    SplitEnd {
        /// The node that split.
        node: NodeId,
        /// The split parameters.
        info: SplitInfo,
        /// History tag of the split.
        tag: u64,
    },

    // ---- semi-synchronous split protocol (§4.1.2) ----------------------
    /// Relayed half-split: apply immediately at the copy.
    RelayedSplit {
        /// The node that split.
        node: NodeId,
        /// The split parameters.
        info: SplitInfo,
        /// History tag of the split.
        tag: u64,
    },

    // ---- lazy merge-at-empty --------------------------------------------
    /// An emptied leaf's PC asks the parent's PC for permission to merge
    /// away. Routed right if the parent has since split past `low`.
    MergeReq {
        /// The parent node (hint; re-routed like other parent actions).
        node: NodeId,
        /// The emptied leaf asking to retire.
        child: NodeId,
        /// The leaf's low key (its separator in the parent).
        low: Key,
        /// The leaf's PC (where the grant/decline goes).
        reply_to: ProcId,
    },
    /// The parent's PC grants the merge: the child edge was verified and a
    /// live left sibling under the same parent was found.
    MergeGrant {
        /// The leaf allowed to retire.
        child: NodeId,
        /// The left sibling that will absorb the leaf's range.
        left: Link,
    },
    /// The parent's PC declines (stale hint, no left sibling under this
    /// parent, or the parent is busy). Unsticks the requester.
    MergeDecline {
        /// The leaf whose request was declined.
        child: NodeId,
    },
    /// The retiring leaf's PC tells the other copies: drop your copy, leave
    /// a forwarding address toward the absorber, reroute anything stashed.
    RelayedRetire {
        /// The retired node.
        node: NodeId,
        /// The absorbing left sibling.
        left: Link,
    },
    /// Initial absorb: extend the left sibling's range/right link over the
    /// retired node's, performed at the absorber's PC. Routed by
    /// `info.low - 1` if the hint is stale.
    Absorb {
        /// The absorbing node (hint).
        node: NodeId,
        /// The retired node's range, right link, and residual tombstones.
        info: AbsorbInfo,
    },
    /// Relayed absorb: propagate an applied absorb to the other copies,
    /// ordered per copy by `count`.
    RelayedAbsorb {
        /// The absorbing node.
        node: NodeId,
        /// The absorb parameters.
        info: AbsorbInfo,
        /// The absorber's absorb-sequence number after this absorb (the
        /// per-copy total order of the absorb class).
        count: u64,
    },

    // ---- copy management ------------------------------------------------
    /// Install a copy of a node (new sibling's copies, join grants,
    /// migration payloads).
    InstallCopy {
        /// Full copy state (boxed: the snapshot dwarfs every other
        /// message, and installs are rare — boxing keeps `Msg` small for
        /// the hot descend path).
        snapshot: Box<NodeSnapshot>,
        /// Why the copy is being installed (affects follow-up actions).
        reason: InstallReason,
        /// History tags the snapshot's value already covers (the backwards
        /// extension of the new copy).
        covered: Vec<u64>,
    },
    /// A new root was created; update the local root pointer and re-parent
    /// local copies of its children.
    NewRoot {
        /// The new root node.
        root: NodeId,
        /// Its level.
        level: u8,
        /// The processor that created it.
        home: ProcId,
        /// The new root's children (the split halves of the old root),
        /// whose local copies' parent links must be updated.
        children: [NodeId; 2],
    },

    // ---- mobility & membership (§4.2 / §4.3) ----------------------------
    /// Control: migrate `node` (which the receiver owns) to `dest`.
    Migrate {
        /// The node to move.
        node: NodeId,
        /// Destination processor.
        dest: ProcId,
    },
    /// Ordered link update: point `dir` of `node` at `link`.
    LinkChange {
        /// The node whose link changes.
        node: NodeId,
        /// Which link.
        dir: LinkDir,
        /// New target (node + home).
        link: crate::types::Link,
        /// Position in the link's total order (the target's version).
        version: u64,
        /// History tag.
        tag: u64,
        /// `false` when first sent toward the node's PC; `true` when the PC
        /// relays it to the other copies.
        relayed: bool,
        /// `true` when the update replaces the link's target node (a split
        /// notification: the new sibling supersedes the old neighbour);
        /// `false` for home refreshes (migrations), which only apply when
        /// the target node id still matches the slot.
        supersedes: bool,
    },
    /// Ordered child-home update: the child at `sep` moved to `home`.
    ChildHomeChange {
        /// The parent node.
        node: NodeId,
        /// The child's separator key.
        sep: Key,
        /// The child (sanity check).
        child: NodeId,
        /// The child's new home.
        home: ProcId,
        /// The child's version after the move.
        version: u64,
        /// History tag.
        tag: u64,
        /// `false` when first sent to the PC; `true` when the PC relays it
        /// to the other copies.
        relayed: bool,
    },
    /// §4.3: ask the node's PC to admit the sender to the replication.
    Join {
        /// The node.
        node: NodeId,
        /// The processor joining.
        joiner: ProcId,
    },
    /// §4.3: the PC tells existing copies about a new member.
    RelayedJoin {
        /// The node.
        node: NodeId,
        /// The new member.
        member: ProcId,
        /// The node version assigned to the join.
        version: u64,
        /// History tag.
        tag: u64,
    },
    /// §4.3: a member leaves the replication.
    Unjoin {
        /// The node.
        node: NodeId,
        /// The processor leaving.
        leaver: ProcId,
    },
    /// §4.3: the PC tells remaining copies about a departure.
    RelayedUnjoin {
        /// The node.
        node: NodeId,
        /// The departed member.
        member: ProcId,
        /// The node version assigned to the unjoin.
        version: u64,
        /// History tag.
        tag: u64,
    },

    // ---- crash recovery & anti-entropy -----------------------------------
    /// Anti-entropy pull: ask a peer for its current state of `node`
    /// (crash-recovery catch-up for copies the stable store retained).
    /// Answered with [`Msg::SyncState`] when the peer holds a copy;
    /// silently ignored otherwise.
    SyncReq {
        /// The node to synchronize.
        node: NodeId,
    },
    /// Anti-entropy push: merge `snapshot` into the local copy of `node`
    /// (a join-semilattice merge — see [`crate::NodeCopy::merge_from`]). Sent in
    /// reply to a [`Msg::SyncReq`] and spontaneously when a quarantined
    /// peer is heard from again.
    SyncState {
        /// The node.
        node: NodeId,
        /// The sender's full copy state (boxed, like
        /// [`Msg::InstallCopy::snapshot`]).
        snapshot: Box<NodeSnapshot>,
        /// History tags the snapshot's value already covers (the sender's
        /// coverage — relays suppressed during the quarantine are in here,
        /// which is what keeps the history checker's per-copy coverage
        /// requirement satisfied without replaying them individually).
        covered: Vec<u64>,
    },

    // ---- available-copies baseline --------------------------------------
    /// Coordinator asks a copy to lock the node.
    LockReq {
        /// The node.
        node: NodeId,
        /// Lock ticket (coordinator-local).
        ticket: u64,
    },
    /// Copy grants the lock.
    LockGrant {
        /// The node.
        node: NodeId,
        /// The ticket being granted.
        ticket: u64,
    },
    /// Coordinator: apply `update` at the copy and unlock.
    ApplyUnlock {
        /// The node.
        node: NodeId,
        /// The ticket being released.
        ticket: u64,
        /// The update to apply before unlocking.
        update: LockedUpdate,
    },
}

/// One relayed insert inside a piggyback batch.
#[derive(Clone, Debug)]
pub struct RelayedItem {
    /// The node.
    pub node: NodeId,
    /// The key.
    pub key: Key,
    /// The entry.
    pub entry: crate::types::Entry,
    /// History tag.
    pub tag: u64,
    /// Version at the initial copy.
    pub version: u64,
    /// Span of the originating client operation (see
    /// [`Msg::RelayedInsert::span`]).
    pub span: Option<u64>,
}

/// Why a copy is being installed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InstallReason {
    /// A new sibling created by a split.
    SiblingCopy,
    /// A §4.3 join grant.
    JoinGrant,
    /// A §4.2 migration: the receiver becomes the (sole) owner.
    Migration {
        /// Where the node came from (for link bookkeeping).
        from: ProcId,
    },
    /// Initial tree construction.
    Bootstrap,
}

/// The update applied under an available-copies lock.
#[derive(Clone, Debug)]
pub enum LockedUpdate {
    /// Insert an entry.
    Insert {
        /// The key.
        key: Key,
        /// The entry.
        entry: crate::types::Entry,
        /// History tag.
        tag: u64,
    },
    /// Apply a split.
    Split {
        /// The split parameters.
        info: SplitInfo,
        /// History tag.
        tag: u64,
    },
    /// Nothing to apply — pure unlock (the coordinated update was re-routed
    /// or had already been satisfied).
    Noop,
}

impl Payload for Msg {
    fn kind(&self) -> &'static str {
        match self {
            Msg::Client { .. } => "client",
            Msg::Done(_) => "done",
            Msg::Descend { .. } => "descend",
            Msg::ClientScan { .. } => "client",
            Msg::Scan { .. } => "scan",
            Msg::ScanResult { .. } => "scan.result",
            Msg::InsertAt { .. } => "insert.initial",
            Msg::RelayedInsert { .. } => "insert.relay",
            Msg::RelayBatch(_) => "insert.relay-batch",
            Msg::SplitStart { .. } => "split.start",
            Msg::SplitAck { .. } => "split.ack",
            Msg::SplitEnd { .. } => "split.end",
            Msg::RelayedSplit { .. } => "split.relay",
            Msg::MergeReq { .. } => "merge.req",
            Msg::MergeGrant { .. } => "merge.grant",
            Msg::MergeDecline { .. } => "merge.decline",
            Msg::RelayedRetire { .. } => "merge.retire-relay",
            Msg::Absorb { .. } => "merge.absorb",
            Msg::RelayedAbsorb { .. } => "merge.absorb-relay",
            Msg::InstallCopy { .. } => "copy.install",
            Msg::NewRoot { .. } => "copy.new-root",
            Msg::Migrate { .. } => "mobility.migrate",
            Msg::LinkChange { .. } => "mobility.link-change",
            Msg::ChildHomeChange { .. } => "mobility.child-home",
            Msg::Join { .. } => "member.join",
            Msg::RelayedJoin { .. } => "member.join-relay",
            Msg::Unjoin { .. } => "member.unjoin",
            Msg::RelayedUnjoin { .. } => "member.unjoin-relay",
            Msg::SyncReq { .. } => "sync.req",
            Msg::SyncState { .. } => "sync.state",
            Msg::LockReq { .. } => "lock.req",
            Msg::LockGrant { .. } => "lock.grant",
            Msg::ApplyUnlock { .. } => "lock.apply",
        }
    }

    fn span(&self) -> Option<u64> {
        match self {
            // Client-plane and navigation messages name their operation
            // explicitly; everything else inherits the sending action's
            // span at the runtime layer.
            Msg::Client { op, .. }
            | Msg::Descend { op, .. }
            | Msg::ClientScan { op, .. }
            | Msg::Scan { op, .. }
            | Msg::ScanResult { op, .. } => Some(op.0),
            Msg::Done(outcome) => Some(outcome.op.0),
            // Relays carry the originating operation across the piggyback
            // buffer, which outlives the action that filled it.
            Msg::RelayedInsert { span, .. } => *span,
            _ => None,
        }
    }

    fn size_hint(&self) -> usize {
        match self {
            // Rough logical wire sizes, for byte accounting.
            Msg::InstallCopy { snapshot, .. } => 64 + snapshot.entries.len() * 24,
            Msg::SyncState {
                snapshot, covered, ..
            } => 64 + snapshot.entries.len() * 24 + covered.len() * 8,
            Msg::RelayBatch(items) => 16 + items.len() * 40,
            Msg::Absorb { info, .. } | Msg::RelayedAbsorb { info, .. } => {
                64 + info.entries.len() * 24
            }
            Msg::Scan { acc, .. } => 48 + acc.len() * 16,
            Msg::ScanResult { items, .. } => 16 + items.len() * 16,
            _ => 48,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_bucket_by_protocol_phase() {
        let m = Msg::SplitStart { node: NodeId(1) };
        assert_eq!(m.kind(), "split.start");
        assert!(Msg::RelayedInsert {
            node: NodeId(1),
            key: 0,
            entry: crate::types::Entry::Tomb { stamp: 0 },
            tag: 0,
            version: 0,
            span: None,
        }
        .kind()
        .starts_with("insert."));
    }

    #[test]
    fn spans_name_the_operation() {
        let m = Msg::Client {
            op: OpId(7),
            key: 1,
            intent: Intent::Search,
        };
        assert_eq!(m.span(), Some(7));
        let r = Msg::RelayedInsert {
            node: NodeId(1),
            key: 0,
            entry: crate::types::Entry::Tomb { stamp: 0 },
            tag: 0,
            version: 0,
            span: Some(9),
        };
        assert_eq!(r.span(), Some(9));
        assert_eq!(Msg::SplitStart { node: NodeId(1) }.span(), None);
    }

    #[test]
    fn link_dir_classes_distinct() {
        assert_ne!(LinkDir::Left.class(), LinkDir::Right.class());
        assert_ne!(LinkDir::Right.class(), LinkDir::Parent.class());
    }
}
