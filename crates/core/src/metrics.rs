//! Per-processor protocol counters, aggregated by the experiment harness.

/// Counters one processor accumulates while executing protocol actions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcMetrics {
    /// Initial inserts blocked by a split AAS (§4.1.1) or an
    /// available-copies lock.
    pub blocked_initial: u64,
    /// Total virtual ticks blocked actions spent waiting.
    pub blocked_ticks: u64,
    /// Search/insert actions queued behind an available-copies lock.
    pub lock_queued: u64,
    /// Right-link chases (misnavigation recoveries of the B-link kind).
    pub link_chases: u64,
    /// Missing-node recoveries (§4.2): action arrived for a node this
    /// processor doesn't store.
    pub missing_node_recoveries: u64,
    /// Missing-node messages saved by a forwarding address.
    pub forwards_followed: u64,
    /// Relayed updates applied.
    pub relays_applied: u64,
    /// Piggyback buffers flushed because the flush-interval timer fired
    /// (as opposed to the batch filling up).
    pub piggyback_timer_flushes: u64,
    /// Relayed updates discarded as out-of-range.
    pub relays_discarded: u64,
    /// Out-of-range relayed updates the PC re-issued toward their proper
    /// home (the semisync history rewrite).
    pub relays_forwarded: u64,
    /// Splits this processor initiated as a PC.
    pub splits_initiated: u64,
    /// Node migrations sent.
    pub migrations_out: u64,
    /// Node migrations received.
    pub migrations_in: u64,
    /// Replications joined (§4.3).
    pub joins: u64,
    /// Replications unjoined (§4.3).
    pub unjoins: u64,
    /// Crash restarts this processor went through (fault plans only).
    pub recoveries: u64,
    /// Interior copies dropped at restart and re-acquired via the §4.3
    /// join protocol.
    pub recovery_rejoins: u64,
    /// Peers quarantined on a failure-detector suspicion.
    pub quarantines: u64,
    /// Relays withheld from quarantined peers (recorded for catch-up
    /// instead of being sent into the void).
    pub relays_suppressed: u64,
    /// Anti-entropy state snapshots sent (quarantine catch-up pushes and
    /// `SyncReq` replies).
    pub sync_pushes: u64,
    /// Anti-entropy pulls requested at restart for retained copies.
    pub sync_pulls: u64,
    /// Anti-entropy snapshots merged that actually changed the local copy.
    pub sync_merges: u64,
    /// Merge-at-empty requests sent to a parent's PC.
    pub merges_requested: u64,
    /// Merge requests declined (no grant, or the grant-commit re-verify
    /// found the leaf no longer empty).
    pub merges_declined: u64,
    /// Merges committed: the emptied leaf was retired and its range handed
    /// to the left sibling.
    pub merges_completed: u64,
    /// Retirement notices applied: a local copy of a merged-away node was
    /// dropped and replaced by a forwarding address.
    pub retires_applied: u64,
    /// Absorb actions applied (initial at the left sibling's PC, or relayed
    /// at its other copies).
    pub absorbs_applied: u64,
    /// Relayed updates addressed to a retired node that were re-issued as
    /// initial inserts toward the absorbing sibling (never dropped: the
    /// client already saw the ack).
    pub relays_rerouted: u64,
}

impl ProcMetrics {
    /// Every counter as a `(name, value)` pair, in declaration order. This
    /// is what the trace layer diffs to attribute counter movement to a
    /// single action ([`simnet::Process::metrics`]).
    pub fn named(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("blocked_initial", self.blocked_initial),
            ("blocked_ticks", self.blocked_ticks),
            ("lock_queued", self.lock_queued),
            ("link_chases", self.link_chases),
            ("missing_node_recoveries", self.missing_node_recoveries),
            ("forwards_followed", self.forwards_followed),
            ("relays_applied", self.relays_applied),
            ("piggyback_timer_flushes", self.piggyback_timer_flushes),
            ("relays_discarded", self.relays_discarded),
            ("relays_forwarded", self.relays_forwarded),
            ("splits_initiated", self.splits_initiated),
            ("migrations_out", self.migrations_out),
            ("migrations_in", self.migrations_in),
            ("joins", self.joins),
            ("unjoins", self.unjoins),
            ("recoveries", self.recoveries),
            ("recovery_rejoins", self.recovery_rejoins),
            ("quarantines", self.quarantines),
            ("relays_suppressed", self.relays_suppressed),
            ("sync_pushes", self.sync_pushes),
            ("sync_pulls", self.sync_pulls),
            ("sync_merges", self.sync_merges),
            ("merges_requested", self.merges_requested),
            ("merges_declined", self.merges_declined),
            ("merges_completed", self.merges_completed),
            ("retires_applied", self.retires_applied),
            ("absorbs_applied", self.absorbs_applied),
            ("relays_rerouted", self.relays_rerouted),
        ]
    }

    /// Element-wise sum, for cluster-level aggregation.
    pub fn merge(&mut self, other: &ProcMetrics) {
        self.blocked_initial += other.blocked_initial;
        self.blocked_ticks += other.blocked_ticks;
        self.lock_queued += other.lock_queued;
        self.link_chases += other.link_chases;
        self.missing_node_recoveries += other.missing_node_recoveries;
        self.forwards_followed += other.forwards_followed;
        self.relays_applied += other.relays_applied;
        self.piggyback_timer_flushes += other.piggyback_timer_flushes;
        self.relays_discarded += other.relays_discarded;
        self.relays_forwarded += other.relays_forwarded;
        self.splits_initiated += other.splits_initiated;
        self.migrations_out += other.migrations_out;
        self.migrations_in += other.migrations_in;
        self.joins += other.joins;
        self.unjoins += other.unjoins;
        self.recoveries += other.recoveries;
        self.recovery_rejoins += other.recovery_rejoins;
        self.quarantines += other.quarantines;
        self.relays_suppressed += other.relays_suppressed;
        self.sync_pushes += other.sync_pushes;
        self.sync_pulls += other.sync_pulls;
        self.sync_merges += other.sync_merges;
        self.merges_requested += other.merges_requested;
        self.merges_declined += other.merges_declined;
        self.merges_completed += other.merges_completed;
        self.retires_applied += other.retires_applied;
        self.absorbs_applied += other.absorbs_applied;
        self.relays_rerouted += other.relays_rerouted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums() {
        let mut a = ProcMetrics {
            link_chases: 2,
            joins: 1,
            ..Default::default()
        };
        let b = ProcMetrics {
            link_chases: 3,
            unjoins: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.link_chases, 5);
        assert_eq!(a.joins, 1);
        assert_eq!(a.unjoins, 4);
    }
}
