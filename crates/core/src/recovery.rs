//! Self-healing (§4.3, automated): failure-detector quarantine and
//! state-based anti-entropy catch-up.
//!
//! The session layer's failure detector is advisory — safety never depends
//! on it — but acting on its transitions removes the two costs a crashed
//! peer otherwise imposes:
//!
//! * **Quarantine.** Relays addressed to a suspect would sit in the
//!   session's retransmit queue burning timers and, eventually, aborting
//!   the channel. Instead [`DbProc`] suppresses them and records *which
//!   node* the suspect missed (one bit per node, not one entry per relay —
//!   the state merge subsumes any number of missed updates).
//! * **Catch-up.** When a suspect is heard from again, each missed node is
//!   pushed as one [`Msg::SyncState`] snapshot. Independently, a restarting
//!   processor *pulls* a sync for every copy its stable store retained
//!   ([`Msg::SyncReq`]). Both directions land in
//!   [`NodeCopy::merge_from`](crate::NodeCopy::merge_from), a
//!   join-semilattice merge, so duplicated, reordered, or crossed syncs all
//!   converge.
//!
//! Snapshots carry the sender's history-tag coverage, the same way join
//! grants do: the checker's per-copy completeness requirement is met by the
//! merged state's *coverage*, not by replaying each suppressed relay.

use simnet::{Context, ProcId, TraceEvent};

use crate::msg::Msg;
use crate::proc::DbProc;
use crate::types::NodeId;

impl DbProc {
    /// React to a failure-detector transition: quarantine a fresh suspect,
    /// or rehabilitate one that was heard from again and push it whatever
    /// state it missed.
    pub(crate) fn handle_peer_change(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        peer: ProcId,
        up: bool,
    ) {
        if !up {
            if self.quarantined.insert(peer) {
                self.metrics.quarantines += 1;
                ctx.mark(
                    TraceEvent::Quarantine,
                    "recovery.quarantine",
                    format!("{peer}"),
                );
            }
            return;
        }
        self.quarantined.remove(&peer);
        if let Some(nodes) = self.missed.remove(&peer) {
            for node in nodes {
                self.push_sync(ctx, peer, node);
            }
        }
    }

    /// Send one full-state sync for `node` to `peer`, if we still hold a
    /// copy (we may have unjoined or migrated it away in the meantime). A
    /// node we *retired* gets a retirement notice instead: the peer is
    /// holding a zombie copy (a stale restart survivor or a quarantine
    /// straggler) that must die, or it would tile the leaf chain twice.
    pub(crate) fn push_sync(&mut self, ctx: &mut Context<'_, Msg>, peer: ProcId, node: NodeId) {
        let Some(copy) = self.store.get(node) else {
            if let Some(&left) = self.retired.get(&node) {
                ctx.send(peer, Msg::RelayedRetire { node, left });
            }
            return;
        };
        let snapshot = Box::new(copy.snapshot());
        let covered = self.log.lock().copy_coverage(node.raw(), self.me.0);
        self.metrics.sync_pushes += 1;
        ctx.send(
            peer,
            Msg::SyncState {
                node,
                snapshot,
                covered,
            },
        );
    }

    /// A peer asks for our state of `node` (restart catch-up pull). Not
    /// holding a copy is normal — the requester asks one peer per node and
    /// membership may have moved on — and is silently ignored.
    pub(crate) fn handle_sync_req(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: ProcId,
        node: NodeId,
    ) {
        self.push_sync(ctx, from, node);
    }

    /// Merge an anti-entropy snapshot into the local copy.
    ///
    /// Unsolicited state never *installs* a copy: a missing copy is either
    /// unjoined (§4.3 — strays must stay dead) or mid-rejoin through the
    /// join protocol, whose grant carries the authoritative snapshot.
    pub(crate) fn handle_sync_state(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        node: NodeId,
        snapshot: crate::node::NodeSnapshot,
        covered: Vec<u64>,
    ) {
        let Some(copy) = self.store.get_mut(node) else {
            return;
        };
        if copy.merge_from(&snapshot) {
            self.metrics.sync_merges += 1;
        }
        // The snapshot's coverage becomes part of this copy's backwards
        // extension, exactly as a join grant's would.
        self.log.lock().copy_created(node.raw(), self.me.0, covered);
        let is_pc = self.store.get(node).map(|c| c.pc) == Some(self.me);
        if is_pc {
            // Merged-in entries may have pushed the copy over the fanout —
            // or merged-in tombstones may have emptied the leaf.
            self.maybe_split(ctx, node);
            self.maybe_merge(ctx, node);
        }
    }

    /// Restart catch-up (the pull half): ask one peer per retained copy for
    /// its current state. Runs after the §4.3 rejoin pass dropped volatile
    /// interior copies, so the store holds exactly the stable set — leaves
    /// and own-PC copies — which the session's retransmissions alone may
    /// leave stale (peers that quarantined us stopped relaying entirely).
    pub(crate) fn sync_pull_all(&mut self, ctx: &mut Context<'_, Msg>) {
        let me = self.me;
        let mut pulls: Vec<(NodeId, ProcId)> = self
            .store
            .iter()
            .filter_map(|c| {
                let peer = if c.pc != me {
                    Some(c.pc)
                } else {
                    c.peers(me).min()
                };
                peer.map(|p| (c.id, p))
            })
            .collect();
        // Store iteration is hash-ordered; sends must replay identically.
        pulls.sort_unstable();
        for (node, peer) in pulls {
            self.metrics.sync_pulls += 1;
            ctx.send(peer, Msg::SyncReq { node });
        }
    }

    /// Restart handling for the quarantine state itself: the failure
    /// detector's opinions died with the crash, so trust nobody's silence —
    /// flush every recorded missed-relay set as a state push (harmless if
    /// the peer is genuinely still down: it will pull at its own restart)
    /// and start with a clean slate.
    pub(crate) fn flush_quarantine_on_restart(&mut self, ctx: &mut Context<'_, Msg>) {
        self.quarantined.clear();
        let missed = std::mem::take(&mut self.missed);
        for (peer, nodes) in missed {
            for node in nodes {
                self.push_sync(ctx, peer, node);
            }
        }
    }
}
