//! `DbCluster` — the public facade: a simulated dB-tree deployment plus a
//! client driver.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use history::HistoryLog;
use parking_lot::Mutex;
use simnet::{
    ProcId, RunOutcome, SessionConfig, SessionMsg, SessionProc, SimConfig, SimTime, Simulation,
};

use crate::build::{build_procs, BuildSpec};
use crate::msg::Msg;
use crate::proc::DbProc;
use crate::types::{Intent, Key, NodeId, OpId, Outcome};

/// The simulation type a [`DbCluster`] drives: every [`DbProc`] is wrapped
/// in the reliable-delivery session layer. With the default (pass-through)
/// session config the wrapper adds nothing — message statistics are
/// identical to driving bare `DbProc`s — and `SessionProc` derefs to
/// `DbProc`, so checkers and metrics readers inspect processors unchanged.
pub type DbSim = Simulation<SessionProc<DbProc>>;

/// Why a run aborted before the network went silent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuiesceError {
    /// `SimConfig::max_events` was hit — likely a protocol livelock (or a
    /// fault plan that keeps a retransmission loop alive forever).
    EventLimit {
        /// Events delivered when the limit tripped.
        delivered: u64,
    },
    /// `SimConfig::max_time` was passed.
    TimeLimit {
        /// Virtual time when the limit tripped.
        now: SimTime,
    },
}

impl std::fmt::Display for QuiesceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuiesceError::EventLimit { delivered } => {
                write!(f, "event limit hit after {delivered} deliveries")
            }
            QuiesceError::TimeLimit { now } => {
                write!(f, "time limit hit at t={}", now.ticks())
            }
        }
    }
}

impl std::error::Error for QuiesceError {}

/// One client operation for the driver.
#[derive(Clone, Copy, Debug)]
pub struct ClientOp {
    /// The processor the client submits to.
    pub origin: ProcId,
    /// The key.
    pub key: Key,
    /// Search or insert.
    pub intent: Intent,
}

/// A completed range scan.
#[derive(Clone, Debug)]
pub struct ScanRecord {
    /// The operation id.
    pub op: OpId,
    /// Inclusive start key requested.
    pub from: Key,
    /// Limit requested.
    pub limit: u32,
    /// The collected `(key, value)` pairs, in key order.
    pub items: Vec<(Key, crate::types::Value)>,
    /// Nodes visited.
    pub hops: u32,
    /// Submission time.
    pub submitted: SimTime,
    /// Completion time.
    pub completed: SimTime,
}

/// A completed operation with its timing.
#[derive(Clone, Copy, Debug)]
pub struct OpRecord {
    /// The submitted operation.
    pub op: ClientOp,
    /// Submission time.
    pub submitted: SimTime,
    /// Completion time (when the leaf replied).
    pub completed: SimTime,
    /// The protocol-reported outcome.
    pub outcome: Outcome,
}

impl OpRecord {
    /// Virtual latency in ticks.
    pub fn latency(&self) -> u64 {
        self.completed - self.submitted
    }
}

/// Aggregate results of a driven workload.
#[derive(Clone, Debug, Default)]
pub struct DriverStats {
    /// Completed operations in completion order.
    pub records: Vec<OpRecord>,
    /// Virtual time from first injection to last completion.
    pub makespan: u64,
}

impl DriverStats {
    /// Mean latency in ticks.
    pub fn mean_latency(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.latency()).sum::<u64>() as f64 / self.records.len() as f64
    }

    /// The `q`-quantile (0..1) of latency.
    pub fn latency_quantile(&self, q: f64) -> u64 {
        if self.records.is_empty() {
            return 0;
        }
        let mut l: Vec<u64> = self.records.iter().map(|r| r.latency()).collect();
        l.sort_unstable();
        let idx = ((l.len() - 1) as f64 * q).round() as usize;
        l[idx]
    }

    /// Operations per 1000 ticks of virtual time.
    pub fn throughput_per_kilotick(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.records.len() as f64 * 1000.0 / self.makespan as f64
    }

    /// Mean hops per operation.
    pub fn mean_hops(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| r.outcome.hops as u64)
            .sum::<u64>() as f64
            / self.records.len() as f64
    }

    /// Total right-link chases.
    pub fn total_chases(&self) -> u64 {
        self.records.iter().map(|r| r.outcome.chases as u64).sum()
    }
}

/// A simulated dB-tree deployment: N processors over a discrete-event
/// network, plus client bookkeeping.
pub struct DbCluster {
    /// The underlying simulation (exposed for stats and inspection).
    pub sim: DbSim,
    log: Arc<Mutex<HistoryLog>>,
    next_op: u64,
    pending: HashMap<OpId, (ClientOp, SimTime)>,
    pending_scans: HashMap<OpId, (Key, u32, SimTime)>,
    scans: Vec<ScanRecord>,
}

impl DbCluster {
    /// Build a deployment from a spec and a simulation config.
    ///
    /// The reliable-delivery session layer is enabled exactly when the
    /// config carries an active fault plan: a fault-free cluster pays no
    /// session overhead (and its message counts are unchanged), while a
    /// faulty one gets the exactly-once FIFO channels the protocols assume.
    pub fn build(spec: &BuildSpec, sim_cfg: SimConfig) -> Self {
        let session = if sim_cfg.faults.is_active() {
            SessionConfig::reliable()
        } else {
            SessionConfig::default()
        };
        Self::build_with_session(spec, sim_cfg, session)
    }

    /// Build with an explicit session configuration (e.g. to demonstrate
    /// what a lossy network does *without* the session layer).
    pub fn build_with_session(
        spec: &BuildSpec,
        sim_cfg: SimConfig,
        session: SessionConfig,
    ) -> Self {
        let (procs, log) = build_procs(spec);
        let procs = procs
            .into_iter()
            .map(|p| SessionProc::new(p, session))
            .collect();
        DbCluster {
            sim: Simulation::new(sim_cfg, procs),
            log,
            next_op: 1,
            pending: HashMap::new(),
            pending_scans: HashMap::new(),
            scans: Vec::new(),
        }
    }

    /// The shared history log.
    pub fn log(&self) -> Arc<Mutex<HistoryLog>> {
        Arc::clone(&self.log)
    }

    /// Number of processors.
    pub fn n_procs(&self) -> u32 {
        self.sim.num_procs() as u32
    }

    /// Submit one client operation (delivered at now+1).
    pub fn submit(&mut self, op: ClientOp) -> OpId {
        let id = OpId(self.next_op);
        self.next_op += 1;
        self.pending.insert(id, (op, self.sim.now()));
        self.sim.inject(
            op.origin,
            SessionMsg::Raw(Msg::Client {
                op: id,
                key: op.key,
                intent: op.intent,
            }),
        );
        id
    }

    /// Submit a range scan: up to `limit` live entries from `from` onward,
    /// collected by walking the leaf chain across processors.
    pub fn scan(&mut self, origin: ProcId, from: Key, limit: u32) -> OpId {
        let id = OpId(self.next_op);
        self.next_op += 1;
        self.pending_scans.insert(id, (from, limit, self.sim.now()));
        self.sim.inject(
            origin,
            SessionMsg::Raw(Msg::ClientScan {
                op: id,
                from,
                limit,
            }),
        );
        id
    }

    /// Completed scans (drained).
    pub fn take_scans(&mut self) -> Vec<ScanRecord> {
        std::mem::take(&mut self.scans)
    }

    /// Inject a migration command (data balancing, §4.2).
    pub fn migrate(&mut self, node: NodeId, owner: ProcId, dest: ProcId) {
        self.sim
            .inject(owner, SessionMsg::Raw(Msg::Migrate { node, dest }));
    }

    /// Every resident leaf with its owning processor, sorted by node id
    /// (deterministic — the shape balancers and tests pick targets from).
    pub fn leaves(&self) -> Vec<(NodeId, ProcId)> {
        let mut out: Vec<(NodeId, ProcId)> = self
            .sim
            .procs()
            .flat_map(|(pid, p)| {
                p.store
                    .iter()
                    .filter(|c| c.is_leaf())
                    .map(move |c| (c.id, pid))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Run until the network is silent; returns completed-op records drained
    /// along the way.
    ///
    /// Panics if a simulation limit (`max_events` / `max_time`) trips first
    /// — a silent early return here used to masquerade as quiescence and let
    /// livelocked runs "pass". Use [`DbCluster::try_run_to_quiescence`] to
    /// handle limits as values.
    pub fn run_to_quiescence(&mut self) -> Vec<OpRecord> {
        match self.try_run_to_quiescence() {
            Ok(records) => records,
            Err(e) => panic!(
                "run_to_quiescence: {e} before the network went silent \
                 ({} ops still pending)",
                self.pending_ops()
            ),
        }
    }

    /// Run until the network is silent, or fail with the limit that tripped.
    pub fn try_run_to_quiescence(&mut self) -> Result<Vec<OpRecord>, QuiesceError> {
        let mut records = Vec::new();
        loop {
            if let Some(outcome) = self.sim.limit_exceeded() {
                self.drain_done(&mut records);
                return Err(match outcome {
                    RunOutcome::EventLimit => QuiesceError::EventLimit {
                        delivered: self.sim.events_delivered(),
                    },
                    _ => QuiesceError::TimeLimit {
                        now: self.sim.now(),
                    },
                });
            }
            let progressed = self.sim.step();
            self.drain_done(&mut records);
            if !progressed {
                return Ok(records);
            }
        }
    }

    /// Drive `ops` closed-loop with `concurrency` outstanding operations per
    /// origin processor, then run to quiescence.
    pub fn run_closed_loop(&mut self, ops: &[ClientOp], concurrency: usize) -> DriverStats {
        let concurrency = concurrency.max(1);
        let mut queues: BTreeMap<ProcId, VecDeque<ClientOp>> = BTreeMap::new();
        for op in ops {
            queues.entry(op.origin).or_default().push_back(*op);
        }
        let start = self.sim.now();
        // Prime each origin's window.
        for (_, q) in queues.iter_mut() {
            for _ in 0..concurrency {
                if let Some(op) = q.pop_front() {
                    let id = OpId(self.next_op);
                    self.next_op += 1;
                    self.pending.insert(id, (op, self.sim.now()));
                    self.sim.inject(
                        op.origin,
                        SessionMsg::Raw(Msg::Client {
                            op: id,
                            key: op.key,
                            intent: op.intent,
                        }),
                    );
                }
            }
        }
        let mut records = Vec::with_capacity(ops.len());
        let mut last_completion = start;
        loop {
            if let Some(outcome) = self.sim.limit_exceeded() {
                panic!(
                    "run_closed_loop: {outcome:?} before the workload drained \
                     ({} ops still pending)",
                    self.pending_ops()
                );
            }
            let progressed = self.sim.step();
            let before = records.len();
            self.drain_done(&mut records);
            for r in &records[before..] {
                last_completion = last_completion.max(r.completed);
                if let Some(q) = queues.get_mut(&r.op.origin) {
                    if let Some(next) = q.pop_front() {
                        self.submit(next);
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        DriverStats {
            makespan: last_completion - start,
            records,
        }
    }

    fn drain_done(&mut self, records: &mut Vec<OpRecord>) {
        for (at, _from, msg) in self.sim.drain_outputs() {
            // Client replies leave the system unsessioned.
            let SessionMsg::Raw(msg) = msg else { continue };
            match msg {
                Msg::Done(outcome) => {
                    if let Some((op, submitted)) = self.pending.remove(&outcome.op) {
                        records.push(OpRecord {
                            op,
                            submitted,
                            completed: at,
                            outcome,
                        });
                    }
                }
                Msg::ScanResult { op, items, hops } => {
                    if let Some((from, limit, submitted)) = self.pending_scans.remove(&op) {
                        self.scans.push(ScanRecord {
                            op,
                            from,
                            limit,
                            items,
                            hops,
                            submitted,
                            completed: at,
                        });
                    }
                }
                _ => {}
            }
        }
    }

    /// Operations submitted but not yet completed (scans included).
    pub fn pending_ops(&self) -> usize {
        self.pending.len() + self.pending_scans.len()
    }

    /// Finalize history digests (call after quiescence, before
    /// `HistoryLog::check`).
    pub fn record_final_digests(&mut self) {
        let mut log = self.log.lock();
        for (pid, proc) in self.sim.procs() {
            for copy in proc.store.iter() {
                log.set_final_digest(copy.id.raw(), pid.0, copy.digest());
            }
        }
    }
}
