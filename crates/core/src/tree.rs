//! `DbCluster` — the public facade: a dB-tree deployment plus a client
//! driver, generic over the execution substrate.
//!
//! All driver mechanics (op ids, pending tracking, closed/open-loop
//! windowing, statistics) live in the shared `simnet::driver::Driver`; this
//! module only teaches it the dB-tree's wire protocol via [`DbProtocol`]
//! and re-exposes the typed convenience surface. The same facade runs on
//! the deterministic simulator ([`DbSim`]) and on real OS threads
//! ([`ThreadedDbCluster`]).

use std::sync::Arc;

use history::HistoryLog;
use parking_lot::Mutex;
use simnet::driver::{ClientProtocol, Completion, Driver, OpOutcome, Submission};
use simnet::{
    threaded, Obs, ObsConfig, OpenLoopCfg, ProcId, QuiesceError, Runtime, SessionConfig,
    SessionMsg, SessionProc, SimConfig, SimTime, Simulation,
};

use crate::build::{build_procs, BuildSpec};
use crate::msg::Msg;
use crate::proc::DbProc;
use crate::types::{Intent, Key, NodeId, OpId, Outcome, Value};

/// The simulation type a [`DbCluster`] drives by default: every [`DbProc`]
/// is wrapped in the reliable-delivery session layer. With the default
/// (pass-through) session config the wrapper adds nothing — message
/// statistics are identical to driving bare `DbProc`s — and `SessionProc`
/// derefs to `DbProc`, so checkers and metrics readers inspect processors
/// unchanged.
pub type DbSim = Simulation<SessionProc<DbProc>>;

/// The threaded runtime for the same processes: one OS thread per
/// processor, ticks are wall-clock microseconds.
pub type ThreadedDbRuntime = threaded::Cluster<SessionProc<DbProc>>;

/// A dB-tree deployment on real threads (see [`DbCluster::build_threaded`]).
pub type ThreadedDbCluster = DbCluster<ThreadedDbRuntime>;

/// One client operation for the driver.
#[derive(Clone, Copy, Debug)]
pub struct ClientOp {
    /// The processor the client submits to.
    pub origin: ProcId,
    /// The key.
    pub key: Key,
    /// Search or insert.
    pub intent: Intent,
}

/// A range-scan request for the driver.
#[derive(Clone, Copy, Debug)]
pub struct ScanSpec {
    /// The processor the scan starts from.
    pub origin: ProcId,
    /// Inclusive start key.
    pub from: Key,
    /// Maximum number of live entries to collect.
    pub limit: u32,
}

/// The dB-tree's client wire protocol, as the generic driver sees it:
/// requests are `Msg::Client`/`Msg::ClientScan` wrapped in the (possibly
/// pass-through) session layer, completions are `Msg::Done` and
/// `Msg::ScanResult`.
pub enum DbProtocol {}

impl ClientProtocol for DbProtocol {
    type Msg = SessionMsg<Msg>;
    type Op = ClientOp;
    type Outcome = Outcome;
    type Scan = ScanSpec;
    type ScanResult = (Vec<(Key, Value)>, u32);

    fn origin(op: &ClientOp) -> ProcId {
        op.origin
    }

    fn retarget(op: &ClientOp, to: ProcId) -> ClientOp {
        // Any processor can serve any client operation (navigation starts
        // at the local root copy), so a retried op can enter at whichever
        // processor the retry layer picked.
        ClientOp { origin: to, ..*op }
    }

    fn request(id: u64, op: &ClientOp) -> Self::Msg {
        SessionMsg::Raw(Msg::Client {
            op: OpId(id),
            key: op.key,
            intent: op.intent,
        })
    }

    fn scan_origin(scan: &ScanSpec) -> ProcId {
        scan.origin
    }

    fn scan_request(id: u64, scan: &ScanSpec) -> Self::Msg {
        SessionMsg::Raw(Msg::ClientScan {
            op: OpId(id),
            from: scan.from,
            limit: scan.limit,
        })
    }

    fn parse(msg: Self::Msg) -> Option<Completion<Outcome, Self::ScanResult>> {
        // Client replies leave the system unsessioned.
        let SessionMsg::Raw(msg) = msg else {
            return None;
        };
        match msg {
            Msg::Done(outcome) => Some(Completion::Op {
                id: outcome.op.0,
                outcome,
            }),
            Msg::ScanResult { op, items, hops } => Some(Completion::Scan {
                id: op.0,
                result: (items, hops),
            }),
            _ => None,
        }
    }
}

impl OpOutcome for Outcome {
    fn hops(&self) -> u32 {
        self.hops
    }
    fn chases(&self) -> u32 {
        self.chases
    }
}

/// One mixed-workload item: a point op or a range scan (typed for the
/// dB-tree; see [`DbCluster::run_closed_loop_mixed`]).
pub type DbSubmission = Submission<ClientOp, ScanSpec>;

/// A completed operation with its timing (shared driver record, typed for
/// the dB-tree).
pub type OpRecord = simnet::driver::OpRecord<ClientOp, Outcome>;

/// Aggregate results of a driven workload (shared driver stats, typed for
/// the dB-tree).
pub type DriverStats = simnet::driver::DriverStats<ClientOp, Outcome>;

/// A completed range scan.
#[derive(Clone, Debug)]
pub struct ScanRecord {
    /// The operation id.
    pub op: OpId,
    /// Inclusive start key requested.
    pub from: Key,
    /// Limit requested.
    pub limit: u32,
    /// The collected `(key, value)` pairs, in key order.
    pub items: Vec<(Key, Value)>,
    /// Nodes visited.
    pub hops: u32,
    /// Submission time.
    pub submitted: SimTime,
    /// Completion time.
    pub completed: SimTime,
}

/// A dB-tree deployment: N processors over a message-passing runtime, plus
/// client bookkeeping. `R` is the substrate — [`DbSim`] (the default) or
/// [`ThreadedDbRuntime`].
pub struct DbCluster<R = DbSim> {
    /// The underlying runtime (exposed for stats and inspection).
    pub sim: R,
    driver: Driver<DbProtocol>,
    log: Arc<Mutex<HistoryLog>>,
}

impl DbCluster<DbSim> {
    /// Build a simulated deployment from a spec and a simulation config.
    ///
    /// The reliable-delivery session layer is enabled exactly when the
    /// config carries an active fault plan: a fault-free cluster pays no
    /// session overhead (and its message counts are unchanged), while a
    /// faulty one gets the exactly-once FIFO channels the protocols assume.
    pub fn build(spec: &BuildSpec, sim_cfg: SimConfig) -> Self {
        let session = if sim_cfg.faults.is_active() {
            SessionConfig::reliable()
        } else {
            SessionConfig::default()
        };
        Self::build_with_session(spec, sim_cfg, session)
    }

    /// Build with an explicit session configuration (e.g. to demonstrate
    /// what a lossy network does *without* the session layer).
    pub fn build_with_session(
        spec: &BuildSpec,
        sim_cfg: SimConfig,
        session: SessionConfig,
    ) -> Self {
        let (procs, log) = build_procs(spec);
        let procs = procs
            .into_iter()
            .map(|p| SessionProc::new(p, session))
            .collect();
        DbCluster {
            sim: Simulation::new(sim_cfg, procs),
            driver: Driver::new(),
            log,
        }
    }

    /// Every resident leaf with its owning processor, sorted by node id
    /// (deterministic — the shape balancers and tests pick targets from).
    pub fn leaves(&self) -> Vec<(NodeId, ProcId)> {
        let mut out: Vec<(NodeId, ProcId)> = self
            .sim
            .procs()
            .flat_map(|(pid, p)| {
                p.store
                    .iter()
                    .filter(|c| c.is_leaf())
                    .map(move |c| (c.id, pid))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Finalize history digests (call after quiescence, before
    /// `HistoryLog::check`).
    pub fn record_final_digests(&mut self) {
        record_final_digests_from(&self.log, self.sim.procs().map(|(pid, p)| (pid, &**p)));
    }
}

impl ThreadedDbCluster {
    /// Build the same deployment on real OS threads (pass-through session
    /// layer: thread channels are already reliable and FIFO).
    pub fn build_threaded(spec: &BuildSpec) -> Self {
        Self::build_threaded_with_session(spec, SessionConfig::default())
    }

    /// Threaded deployment with an explicit session configuration.
    pub fn build_threaded_with_session(spec: &BuildSpec, session: SessionConfig) -> Self {
        Self::build_threaded_with_obs(spec, session, ObsConfig::default())
    }

    /// Threaded deployment with observability (causal traces and metric
    /// samples, same schema as the simulator's).
    pub fn build_threaded_with_obs(
        spec: &BuildSpec,
        session: SessionConfig,
        obs: ObsConfig,
    ) -> Self {
        let (procs, log) = build_procs(spec);
        let procs: Vec<SessionProc<DbProc>> = procs
            .into_iter()
            .map(|p| SessionProc::new(p, session))
            .collect();
        DbCluster {
            sim: threaded::Cluster::spawn_with(procs, obs),
            driver: Driver::new(),
            log,
        }
    }
}

impl<R> DbCluster<R>
where
    R: Runtime<Proc = SessionProc<DbProc>>,
{
    /// The shared history log.
    pub fn log(&self) -> Arc<Mutex<HistoryLog>> {
        Arc::clone(&self.log)
    }

    /// Enable (or reconfigure) client-side robustness: per-op deadlines,
    /// bounded exponential backoff, and redirect-away-from-suspects. With
    /// the default (disabled) policy the driver behaves exactly as before.
    pub fn set_retry(&mut self, policy: simnet::RetryPolicy) {
        self.driver.set_retry(policy);
    }

    /// Number of processors.
    pub fn n_procs(&self) -> u32 {
        self.sim.num_procs() as u32
    }

    /// Submit one client operation (delivered at now+1).
    pub fn submit(&mut self, op: ClientOp) -> OpId {
        OpId(self.driver.submit(&mut self.sim, op))
    }

    /// Submit a range scan: up to `limit` live entries from `from` onward,
    /// collected by walking the leaf chain across processors.
    pub fn scan(&mut self, origin: ProcId, from: Key, limit: u32) -> OpId {
        OpId(self.driver.submit_scan(
            &mut self.sim,
            ScanSpec {
                origin,
                from,
                limit,
            },
        ))
    }

    /// Completed scans (drained).
    pub fn take_scans(&mut self) -> Vec<ScanRecord> {
        self.driver
            .take_scans()
            .into_iter()
            .map(|s| ScanRecord {
                op: OpId(s.id),
                from: s.scan.from,
                limit: s.scan.limit,
                items: s.result.0,
                hops: s.result.1,
                submitted: s.submitted,
                completed: s.completed,
            })
            .collect()
    }

    /// Inject a migration command (data balancing, §4.2).
    pub fn migrate(&mut self, node: NodeId, owner: ProcId, dest: ProcId) {
        self.sim
            .inject(owner, SessionMsg::Raw(Msg::Migrate { node, dest }));
    }

    /// Run until the network is silent; returns completed-op records drained
    /// along the way.
    ///
    /// Panics if a limit trips first — a silent early return here used to
    /// masquerade as quiescence and let livelocked runs "pass". Use
    /// [`DbCluster::try_run_to_quiescence`] to handle limits as values.
    pub fn run_to_quiescence(&mut self) -> Vec<OpRecord> {
        self.driver.run_to_quiescence(&mut self.sim)
    }

    /// Run until the network is silent, or fail with the limit that tripped.
    pub fn try_run_to_quiescence(&mut self) -> Result<Vec<OpRecord>, QuiesceError> {
        self.driver.try_run_to_quiescence(&mut self.sim)
    }

    /// Drive `ops` closed-loop with `concurrency` outstanding operations per
    /// origin processor, then run to quiescence. Panics if a limit trips
    /// (see [`DbCluster::try_run_closed_loop`]).
    pub fn run_closed_loop(&mut self, ops: &[ClientOp], concurrency: usize) -> DriverStats {
        self.driver.run_closed_loop(&mut self.sim, ops, concurrency)
    }

    /// Drive a mixed stream of point ops and range scans closed-loop (scan
    /// completions open window slots like op completions; results come back
    /// via [`DbCluster::take_scans`]), then run to quiescence.
    pub fn run_closed_loop_mixed(
        &mut self,
        items: &[DbSubmission],
        concurrency: usize,
    ) -> DriverStats {
        self.driver
            .run_closed_loop_mixed(&mut self.sim, items, concurrency)
    }

    /// Closed-loop driving with limits reported as values instead of
    /// panics.
    pub fn try_run_closed_loop(
        &mut self,
        ops: &[ClientOp],
        concurrency: usize,
    ) -> Result<DriverStats, QuiesceError> {
        self.driver
            .try_run_closed_loop(&mut self.sim, ops, concurrency)
    }

    /// Drive `ops` open-loop at the fixed arrival schedule of `cfg`
    /// (arrivals do not wait for completions), then run to quiescence.
    pub fn run_open_loop(&mut self, ops: &[ClientOp], cfg: &OpenLoopCfg) -> DriverStats {
        self.driver.run_open_loop(&mut self.sim, ops, cfg)
    }

    /// Open-loop driving with limits reported as values instead of panics.
    pub fn try_run_open_loop(
        &mut self,
        ops: &[ClientOp],
        cfg: &OpenLoopCfg,
    ) -> Result<DriverStats, QuiesceError> {
        self.driver.try_run_open_loop(&mut self.sim, ops, cfg)
    }

    /// Operations submitted but not yet completed (scans included).
    pub fn pending_ops(&self) -> usize {
        self.driver.pending_ops()
    }

    /// Drain the runtime's observability capture (causal trace + metric
    /// time-series); works identically on both substrates.
    pub fn take_obs(&mut self) -> Obs {
        self.sim.take_obs()
    }

    /// Tear the runtime down and return the final processor states (joins
    /// worker threads on the threaded runtime). The history log survives in
    /// [`DbCluster::log`] clones; record digests with
    /// [`record_final_digests_from`].
    pub fn into_procs(self) -> Vec<SessionProc<DbProc>> {
        self.sim.into_procs()
    }
}

/// Record every copy's final digest into `log` — the post-run half of the
/// §3 checker, usable on any source of processor states (a live simulation
/// or the processes handed back by a threaded shutdown).
pub fn record_final_digests_from<'a>(
    log: &Arc<Mutex<HistoryLog>>,
    procs: impl IntoIterator<Item = (ProcId, &'a DbProc)>,
) {
    let mut log = log.lock();
    for (pid, proc) in procs {
        for copy in proc.store.iter() {
            log.set_final_digest(copy.id.raw(), pid.0, copy.digest());
        }
    }
}
