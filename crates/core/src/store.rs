//! Per-processor node storage.
//!
//! The store is the node manager's hottest data structure: every descent hop
//! does one `get` by [`NodeId`], and every leaf write does a `get_mut`. It
//! is laid out as a slab arena — copies live in a dense `Vec` of slots with
//! a free list, and a hashed side index maps `NodeId -> slot`. Compared to
//! a plain `HashMap<NodeId, NodeCopy>` this keeps the (large) `NodeCopy`
//! values in stable, reusable storage, makes iteration allocation-free and
//! **deterministic** (slot order is a pure function of the install/remove
//! history, never of hash seeds or capacity), and shrinks the per-lookup
//! cost to one FxHash probe plus one bounds-checked index.
//!
//! Forwarding addresses are rare and small, so they live in a compact
//! sorted vector probed by binary search rather than a second hash table.

use simnet::{FxHashMap, ProcId};

use crate::node::NodeCopy;
use crate::types::{Key, NodeId};

/// A forwarding address left behind by a migration (§4.2). Not required for
/// correctness — misnavigation recovery handles missing nodes — so entries
/// may be garbage-collected at any time.
#[derive(Clone, Copy, Debug)]
pub struct ForwardAddr {
    /// Where the node went.
    pub to: ProcId,
    /// The node's version after the move.
    pub version: u64,
    /// Tick at which the address was created (for TTL GC).
    pub created_at: u64,
}

/// The node manager's local store: every copy this processor maintains, its
/// current root pointer, and (optionally) forwarding addresses.
#[derive(Debug, Default)]
pub struct NodeStore {
    /// Slab of node copies. `None` slots are free and listed in `free`.
    slots: Vec<Option<NodeCopy>>,
    /// Free slot indices, reused LIFO.
    free: Vec<u32>,
    /// `NodeId -> slot` index. Lookup-only: iteration always goes through
    /// the slab in slot order, never through this map.
    index: FxHashMap<NodeId, u32>,
    /// Forwarding addresses, sorted by node id (binary-searched).
    forwards: Vec<(NodeId, ForwardAddr)>,
    root: Option<NodeId>,
    root_home: Option<ProcId>,
    root_level: u8,
    next_node_counter: u64,
}

impl NodeStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mint a fresh node id for this processor.
    pub fn mint_node_id(&mut self, me: ProcId) -> NodeId {
        let id = NodeId::mint(me, self.next_node_counter);
        self.next_node_counter += 1;
        id
    }

    /// Install (or replace) a copy.
    pub fn install(&mut self, copy: NodeCopy) {
        self.drop_forward(copy.id);
        match self.index.get(&copy.id) {
            Some(&slot) => self.slots[slot as usize] = Some(copy),
            None => {
                let slot = match self.free.pop() {
                    Some(s) => {
                        debug_assert!(self.slots[s as usize].is_none());
                        s
                    }
                    None => {
                        self.slots.push(None);
                        (self.slots.len() - 1) as u32
                    }
                };
                self.index.insert(copy.id, slot);
                self.slots[slot as usize] = Some(copy);
            }
        }
    }

    /// Remove a copy, returning it.
    pub fn remove(&mut self, id: NodeId) -> Option<NodeCopy> {
        let slot = self.index.remove(&id)?;
        let copy = self.slots[slot as usize].take();
        debug_assert!(copy.is_some(), "index pointed at an empty slot");
        self.free.push(slot);
        copy
    }

    /// Borrow a copy.
    #[inline]
    pub fn get(&self, id: NodeId) -> Option<&NodeCopy> {
        let &slot = self.index.get(&id)?;
        self.slots[slot as usize].as_ref()
    }

    /// Mutably borrow a copy.
    #[inline]
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut NodeCopy> {
        let &slot = self.index.get(&id)?;
        self.slots[slot as usize].as_mut()
    }

    /// Does the store hold a copy of `id`?
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        self.index.contains_key(&id)
    }

    /// All local copies, in slot order — a deterministic order that depends
    /// only on the sequence of installs and removes, never on hashing.
    pub fn iter(&self) -> impl Iterator<Item = &NodeCopy> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// Number of local copies.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Slots in the slab, live *and* free — the arena's high-water mark.
    /// When churn reuses freed slots this stays near the live-set peak
    /// instead of growing with cumulative installs.
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    /// True when no copies are stored.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Local leaf count (load metric for data balancing).
    pub fn leaf_count(&self) -> usize {
        self.iter().filter(|c| c.is_leaf()).count()
    }

    /// Record the root.
    pub fn set_root(&mut self, root: NodeId, level: u8, home: ProcId) {
        if level >= self.root_level || self.root.is_none() {
            self.root = Some(root);
            self.root_level = level;
            self.root_home = Some(home);
        }
    }

    /// The current root, if known.
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// A processor guaranteed to hold the root.
    pub fn root_home(&self) -> Option<ProcId> {
        self.root_home
    }

    /// Leave a forwarding address for a departed node.
    pub fn set_forward(&mut self, id: NodeId, addr: ForwardAddr) {
        match self.forwards.binary_search_by_key(&id, |(n, _)| *n) {
            Ok(i) => self.forwards[i].1 = addr,
            Err(i) => self.forwards.insert(i, (id, addr)),
        }
    }

    /// Look up a forwarding address.
    pub fn forward_for(&self, id: NodeId) -> Option<ForwardAddr> {
        self.forwards
            .binary_search_by_key(&id, |(n, _)| *n)
            .ok()
            .map(|i| self.forwards[i].1)
    }

    fn drop_forward(&mut self, id: NodeId) {
        if let Ok(i) = self.forwards.binary_search_by_key(&id, |(n, _)| *n) {
            self.forwards.remove(i);
        }
    }

    /// Drop forwarding addresses older than `ttl` at time `now`. Returns the
    /// number collected.
    pub fn gc_forwards(&mut self, now: u64, ttl: u64) -> usize {
        let before = self.forwards.len();
        self.forwards
            .retain(|(_, f)| now.saturating_sub(f.created_at) < ttl);
        before - self.forwards.len()
    }

    /// Number of live forwarding addresses.
    pub fn forward_count(&self) -> usize {
        self.forwards.len()
    }

    /// Hash the store's protocol-visible state into `h`. Copies are hashed
    /// sorted by node id, so the fingerprint depends only on *what* is
    /// stored, never on the slab's install/remove history (slot order).
    /// Forwarding addresses are hashed without their `created_at` GC
    /// timestamps — two schedules that left the same address at different
    /// virtual times route identically from here on.
    pub fn fingerprint_into(&self, h: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        let mut copies: Vec<&NodeCopy> = self.iter().collect();
        copies.sort_unstable_by_key(|c| c.id);
        copies.len().hash(h);
        for c in copies {
            c.fingerprint_into(h);
        }
        self.forwards.len().hash(h);
        for (id, f) in &self.forwards {
            (id.raw(), f.to.0, f.version).hash(h);
        }
        self.root.map(NodeId::raw).hash(h);
        self.root_home.map(|p| p.0).hash(h);
        self.root_level.hash(h);
        self.next_node_counter.hash(h);
    }

    /// Misnavigation recovery (§4.2 "missing node"): the best local node to
    /// restart an action for `key` from — the *lowest-level* local copy
    /// whose range contains the key (closest to the destination), falling
    /// back to the highest-level copy present, then `None` if the store is
    /// empty.
    pub fn closest_for(&self, key: Key) -> Option<NodeId> {
        self.iter()
            .filter(|c| c.range.contains(key))
            .min_by_key(|c| (c.level, c.id))
            .map(|c| c.id)
            .or_else(|| self.iter().max_by_key(|c| (c.level, c.id)).map(|c| c.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::KeyRange;

    fn copy(id: u64, level: u8, low: u64, high: Option<u64>) -> NodeCopy {
        NodeCopy::new(NodeId(id), level, KeyRange::new(low, high), ProcId(0))
    }

    #[test]
    fn install_get_remove() {
        let mut s = NodeStore::new();
        s.install(copy(1, 0, 0, None));
        assert!(s.contains(NodeId(1)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.leaf_count(), 1);
        assert!(s.remove(NodeId(1)).is_some());
        assert!(s.is_empty());
    }

    #[test]
    fn root_tracking_prefers_higher_levels() {
        let mut s = NodeStore::new();
        s.set_root(NodeId(1), 1, ProcId(0));
        s.set_root(NodeId(2), 0, ProcId(1)); // stale lower root ignored
        assert_eq!(s.root(), Some(NodeId(1)));
        s.set_root(NodeId(3), 2, ProcId(2));
        assert_eq!(s.root(), Some(NodeId(3)));
        assert_eq!(s.root_home(), Some(ProcId(2)));
    }

    #[test]
    fn closest_prefers_lowest_covering_level() {
        let mut s = NodeStore::new();
        s.install(copy(1, 2, 0, None)); // root-ish
        s.install(copy(2, 1, 0, Some(100)));
        s.install(copy(3, 0, 0, Some(10)));
        assert_eq!(s.closest_for(5), Some(NodeId(3)));
        assert_eq!(s.closest_for(50), Some(NodeId(2)));
        assert_eq!(s.closest_for(500), Some(NodeId(1)));
    }

    #[test]
    fn closest_falls_back_to_highest_level() {
        let mut s = NodeStore::new();
        s.install(copy(3, 0, 0, Some(10)));
        // Key not covered by any copy: fall back to the highest level.
        assert_eq!(s.closest_for(50), Some(NodeId(3)));
        assert_eq!(NodeStore::new().closest_for(5), None);
    }

    #[test]
    fn forwarding_gc() {
        let mut s = NodeStore::new();
        s.set_forward(
            NodeId(1),
            ForwardAddr {
                to: ProcId(2),
                version: 1,
                created_at: 100,
            },
        );
        assert!(s.forward_for(NodeId(1)).is_some());
        assert_eq!(s.gc_forwards(150, 100), 0);
        assert_eq!(s.gc_forwards(300, 100), 1);
        assert!(s.forward_for(NodeId(1)).is_none());
    }

    #[test]
    fn install_clears_forward() {
        let mut s = NodeStore::new();
        s.set_forward(
            NodeId(1),
            ForwardAddr {
                to: ProcId(2),
                version: 1,
                created_at: 0,
            },
        );
        s.install(copy(1, 0, 0, None));
        assert!(s.forward_for(NodeId(1)).is_none(), "node came back");
    }

    #[test]
    fn minted_ids_unique() {
        let mut s = NodeStore::new();
        let a = s.mint_node_id(ProcId(3));
        let b = s.mint_node_id(ProcId(3));
        assert_ne!(a, b);
        assert_eq!(a.minted_by(), ProcId(3));
    }

    #[test]
    fn iteration_is_slot_ordered_and_reuses_slots() {
        // Satellite invariant: `iter()` order is a pure function of the
        // install/remove history — pinned here so a refactor that silently
        // reintroduces hash-ordered iteration fails loudly.
        let mut s = NodeStore::new();
        for id in [7u64, 3, 9, 1] {
            s.install(copy(id, 0, 0, None));
        }
        let order = |s: &NodeStore| s.iter().map(|c| c.id.0).collect::<Vec<_>>();
        assert_eq!(order(&s), vec![7, 3, 9, 1], "insertion order, not id order");

        // Removing frees the slot; the next install reuses it in place.
        s.remove(NodeId(3));
        assert_eq!(order(&s), vec![7, 9, 1]);
        s.install(copy(42, 0, 0, None));
        assert_eq!(order(&s), vec![7, 42, 9, 1], "slot 1 reused by 42");

        // Replacing an existing id keeps its slot.
        s.install(copy(9, 1, 0, Some(5)));
        assert_eq!(order(&s), vec![7, 42, 9, 1]);
        assert_eq!(s.get(NodeId(9)).unwrap().level, 1);

        // Stable across repeated iteration.
        assert_eq!(order(&s), order(&s));
    }
}
