//! Per-processor node storage.

use std::collections::HashMap;

use simnet::ProcId;

use crate::node::NodeCopy;
use crate::types::{Key, NodeId};

/// A forwarding address left behind by a migration (§4.2). Not required for
/// correctness — misnavigation recovery handles missing nodes — so entries
/// may be garbage-collected at any time.
#[derive(Clone, Copy, Debug)]
pub struct ForwardAddr {
    /// Where the node went.
    pub to: ProcId,
    /// The node's version after the move.
    pub version: u64,
    /// Tick at which the address was created (for TTL GC).
    pub created_at: u64,
}

/// The node manager's local store: every copy this processor maintains, its
/// current root pointer, and (optionally) forwarding addresses.
#[derive(Debug, Default)]
pub struct NodeStore {
    copies: HashMap<NodeId, NodeCopy>,
    forwards: HashMap<NodeId, ForwardAddr>,
    root: Option<NodeId>,
    root_home: Option<ProcId>,
    root_level: u8,
    next_node_counter: u64,
}

impl NodeStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mint a fresh node id for this processor.
    pub fn mint_node_id(&mut self, me: ProcId) -> NodeId {
        let id = NodeId::mint(me, self.next_node_counter);
        self.next_node_counter += 1;
        id
    }

    /// Install (or replace) a copy.
    pub fn install(&mut self, copy: NodeCopy) {
        self.forwards.remove(&copy.id);
        self.copies.insert(copy.id, copy);
    }

    /// Remove a copy, returning it.
    pub fn remove(&mut self, id: NodeId) -> Option<NodeCopy> {
        self.copies.remove(&id)
    }

    /// Borrow a copy.
    pub fn get(&self, id: NodeId) -> Option<&NodeCopy> {
        self.copies.get(&id)
    }

    /// Mutably borrow a copy.
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut NodeCopy> {
        self.copies.get_mut(&id)
    }

    /// Does the store hold a copy of `id`?
    pub fn contains(&self, id: NodeId) -> bool {
        self.copies.contains_key(&id)
    }

    /// All local copies.
    pub fn iter(&self) -> impl Iterator<Item = &NodeCopy> {
        self.copies.values()
    }

    /// Number of local copies.
    pub fn len(&self) -> usize {
        self.copies.len()
    }

    /// True when no copies are stored.
    pub fn is_empty(&self) -> bool {
        self.copies.is_empty()
    }

    /// Local leaf count (load metric for data balancing).
    pub fn leaf_count(&self) -> usize {
        self.copies.values().filter(|c| c.is_leaf()).count()
    }

    /// Record the root.
    pub fn set_root(&mut self, root: NodeId, level: u8, home: ProcId) {
        if level >= self.root_level || self.root.is_none() {
            self.root = Some(root);
            self.root_level = level;
            self.root_home = Some(home);
        }
    }

    /// The current root, if known.
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// A processor guaranteed to hold the root.
    pub fn root_home(&self) -> Option<ProcId> {
        self.root_home
    }

    /// Leave a forwarding address for a departed node.
    pub fn set_forward(&mut self, id: NodeId, addr: ForwardAddr) {
        self.forwards.insert(id, addr);
    }

    /// Look up a forwarding address.
    pub fn forward_for(&self, id: NodeId) -> Option<ForwardAddr> {
        self.forwards.get(&id).copied()
    }

    /// Drop forwarding addresses older than `ttl` at time `now`. Returns the
    /// number collected.
    pub fn gc_forwards(&mut self, now: u64, ttl: u64) -> usize {
        let before = self.forwards.len();
        self.forwards
            .retain(|_, f| now.saturating_sub(f.created_at) < ttl);
        before - self.forwards.len()
    }

    /// Number of live forwarding addresses.
    pub fn forward_count(&self) -> usize {
        self.forwards.len()
    }

    /// Misnavigation recovery (§4.2 "missing node"): the best local node to
    /// restart an action for `key` from — the *lowest-level* local copy
    /// whose range contains the key (closest to the destination), falling
    /// back to the highest-level copy present, then `None` if the store is
    /// empty.
    pub fn closest_for(&self, key: Key) -> Option<NodeId> {
        self.copies
            .values()
            .filter(|c| c.range.contains(key))
            .min_by_key(|c| (c.level, c.id))
            .map(|c| c.id)
            .or_else(|| {
                self.copies
                    .values()
                    .max_by_key(|c| (c.level, c.id))
                    .map(|c| c.id)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::KeyRange;

    fn copy(id: u64, level: u8, low: u64, high: Option<u64>) -> NodeCopy {
        NodeCopy::new(NodeId(id), level, KeyRange::new(low, high), ProcId(0))
    }

    #[test]
    fn install_get_remove() {
        let mut s = NodeStore::new();
        s.install(copy(1, 0, 0, None));
        assert!(s.contains(NodeId(1)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.leaf_count(), 1);
        assert!(s.remove(NodeId(1)).is_some());
        assert!(s.is_empty());
    }

    #[test]
    fn root_tracking_prefers_higher_levels() {
        let mut s = NodeStore::new();
        s.set_root(NodeId(1), 1, ProcId(0));
        s.set_root(NodeId(2), 0, ProcId(1)); // stale lower root ignored
        assert_eq!(s.root(), Some(NodeId(1)));
        s.set_root(NodeId(3), 2, ProcId(2));
        assert_eq!(s.root(), Some(NodeId(3)));
        assert_eq!(s.root_home(), Some(ProcId(2)));
    }

    #[test]
    fn closest_prefers_lowest_covering_level() {
        let mut s = NodeStore::new();
        s.install(copy(1, 2, 0, None)); // root-ish
        s.install(copy(2, 1, 0, Some(100)));
        s.install(copy(3, 0, 0, Some(10)));
        assert_eq!(s.closest_for(5), Some(NodeId(3)));
        assert_eq!(s.closest_for(50), Some(NodeId(2)));
        assert_eq!(s.closest_for(500), Some(NodeId(1)));
    }

    #[test]
    fn closest_falls_back_to_highest_level() {
        let mut s = NodeStore::new();
        s.install(copy(3, 0, 0, Some(10)));
        // Key not covered by any copy: fall back to the highest level.
        assert_eq!(s.closest_for(50), Some(NodeId(3)));
        assert_eq!(NodeStore::new().closest_for(5), None);
    }

    #[test]
    fn forwarding_gc() {
        let mut s = NodeStore::new();
        s.set_forward(
            NodeId(1),
            ForwardAddr {
                to: ProcId(2),
                version: 1,
                created_at: 100,
            },
        );
        assert!(s.forward_for(NodeId(1)).is_some());
        assert_eq!(s.gc_forwards(150, 100), 0);
        assert_eq!(s.gc_forwards(300, 100), 1);
        assert!(s.forward_for(NodeId(1)).is_none());
    }

    #[test]
    fn install_clears_forward() {
        let mut s = NodeStore::new();
        s.set_forward(
            NodeId(1),
            ForwardAddr {
                to: ProcId(2),
                version: 1,
                created_at: 0,
            },
        );
        s.install(copy(1, 0, 0, None));
        assert!(s.forward_for(NodeId(1)).is_none(), "node came back");
    }

    #[test]
    fn minted_ids_unique() {
        let mut s = NodeStore::new();
        let a = s.mint_node_id(ProcId(3));
        let b = s.mint_node_id(ProcId(3));
        assert_ne!(a, b);
        assert_eq!(a.minted_by(), ProcId(3));
    }
}
