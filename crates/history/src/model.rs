//! The formal model of §3, executable.
//!
//! A *node value* is the state of one search-structure node: a key range, a
//! set of keys, and a right-sibling name. An *action* maps a value to a new
//! value plus a set of *subsequent actions* (here reduced to the observable
//! side effects that matter for commutativity: entries forwarded to a
//! sibling, siblings created). A *history* is an initial value plus a
//! sequence of actions; two histories are **compatible** when they are valid,
//! reach the same final value, and have the same uniform update actions.

use std::collections::BTreeSet;
use std::fmt;

/// A toy search-structure node value: the concrete domain over which the §3
/// definitions are exercised.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NodeValue {
    /// Inclusive lower bound of the node's responsibility.
    pub low: u64,
    /// Exclusive upper bound (`None` = +∞).
    pub high: Option<u64>,
    /// Keys currently stored.
    pub keys: BTreeSet<u64>,
    /// Name of the right sibling (0 = none). Half-splits change this, which
    /// is exactly why they do not commute with each other.
    pub right: u64,
}

impl NodeValue {
    /// A node covering `[low, high)` with no keys.
    pub fn new(low: u64, high: Option<u64>) -> Self {
        NodeValue {
            low,
            high,
            keys: BTreeSet::new(),
            right: 0,
        }
    }

    /// Range membership.
    pub fn in_range(&self, key: u64) -> bool {
        key >= self.low && self.high.is_none_or(|h| key < h)
    }
}

/// An update action on a copy, in the paper's notation `a^t(p, c)`.
///
/// The superscript `t ∈ {i, r}` (initial vs relayed) is the `initial` flag;
/// the parameter `p` is the key (or split point); the tag identifies the
/// logical update so that an initial action and its relays count as the same
/// *uniform* action.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// `I(key)` / `i(key)` — insert a key.
    Insert {
        /// Uniform identity of this update.
        tag: u64,
        /// The key inserted.
        key: u64,
        /// Initial (capital-I) or relayed (lowercase-i) form.
        initial: bool,
    },
    /// `S(at, sib)` / `s(at, sib)` — half-split: shrink the range to
    /// `[low, at)`, point `right` at `sib`; keys ≥ `at` leave the node.
    HalfSplit {
        /// Uniform identity of this update.
        tag: u64,
        /// Split point.
        at: u64,
        /// Name of the new sibling.
        sib: u64,
        /// Initial or relayed form.
        initial: bool,
    },
    /// `R(fwd)` / `r(fwd)` — retire: collapse the range to empty and point
    /// `right` at the forwarding target `fwd` (the left absorber).
    ///
    /// The *initial* form models the grant-then-commit re-verify: it is a
    /// no-op unless the node is empty (a live key at commit time declines
    /// the merge). The *relayed* form applies unconditionally — by the time
    /// a peer sees it the primary has already committed — and any keys a
    /// stale copy still holds are discarded (the stamps that emptied the
    /// node dominate them).
    Retire {
        /// Uniform identity of this update.
        tag: u64,
        /// Name of the left absorber the right link forwards to.
        fwd: u64,
        /// Initial or relayed form.
        initial: bool,
    },
    /// `A(to, right)` / `a(to, right)` — absorb: widen the range upward to
    /// `to` (the retired neighbour's high bound) and adopt its right
    /// sibling `right`. The mirror image of a half-split: where `S` shrinks
    /// `[low, high)` to `[low, at)`, `A` grows it to `[low, to)`.
    Absorb {
        /// Uniform identity of this update.
        tag: u64,
        /// New (exclusive) high bound — the retired node's high.
        to: u64,
        /// The retired node's right sibling (0 = none).
        right: u64,
        /// Initial or relayed form.
        initial: bool,
    },
}

impl Action {
    /// The uniform identity (initial/relayed distinction erased — `U(H)` in
    /// the paper).
    pub fn tag(&self) -> u64 {
        match *self {
            Action::Insert { tag, .. }
            | Action::HalfSplit { tag, .. }
            | Action::Retire { tag, .. }
            | Action::Absorb { tag, .. } => tag,
        }
    }

    /// Is this the initial (capital) form?
    pub fn is_initial(&self) -> bool {
        match *self {
            Action::Insert { initial, .. }
            | Action::HalfSplit { initial, .. }
            | Action::Retire { initial, .. }
            | Action::Absorb { initial, .. } => initial,
        }
    }

    /// Observable side effects of applying an action: the subsequent-action
    /// set reduced to what affects compatibility.
    ///
    /// * `Insert` out of range (initial): the key is routed right — the
    ///   action is *valid* but its effect lands elsewhere.
    /// * `Insert` out of range (relayed): discarded.
    /// * `HalfSplit`: keys at or beyond the split point move to the sibling.
    pub fn apply(&self, value: &NodeValue) -> (NodeValue, Effects) {
        let mut v = value.clone();
        let mut fx = Effects::default();
        match *self {
            Action::Insert { key, initial, .. } => {
                if v.in_range(key) {
                    v.keys.insert(key);
                } else if initial {
                    fx.routed_right.insert(key);
                } else {
                    fx.discarded.insert(key);
                }
            }
            Action::HalfSplit {
                at, sib, initial, ..
            } => {
                let moved: BTreeSet<u64> = v.keys.split_off(&at);
                if initial {
                    // The initial split's subsequent action ships these to
                    // the new sibling.
                    fx.moved_to_sibling.extend(moved);
                } else {
                    // A relayed split just drops them: the initial split at
                    // the primary already moved the authoritative copies.
                    fx.discarded.extend(moved);
                }
                v.high = Some(at.min(v.high.unwrap_or(u64::MAX)));
                v.right = sib;
            }
            Action::Retire { fwd, initial, .. } => {
                if initial && !v.keys.is_empty() {
                    // Commit-time re-verify: a live key declines the merge.
                } else {
                    fx.discarded.extend(std::mem::take(&mut v.keys));
                    v.high = Some(v.low);
                    v.right = fwd;
                }
            }
            Action::Absorb { to, right, .. } => {
                // Widening only: an unbounded range stays unbounded, a
                // bounded one never shrinks (absorbs arrive ordered by
                // epoch, so a late absorb with a smaller bound is stale).
                v.high = v.high.map(|h| h.max(to));
                if right != 0 {
                    v.right = right;
                }
            }
        }
        (v, fx)
    }
}

/// Side effects of applying an action.
///
/// `routed_right` and `moved_to_sibling` are *subsequent actions* in the
/// paper's sense — other nodes observe them, so commutativity must preserve
/// them. `discarded` is purely diagnostic: a discard has no subsequent
/// action and does not participate in the §4.1 commutativity relation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Effects {
    /// Keys an initial insert forwarded through the right link
    /// (a subsequent action).
    pub routed_right: BTreeSet<u64>,
    /// Keys dropped with no subsequent action: relayed inserts that arrived
    /// out of range, and entries a *relayed* split removed (the initial
    /// split already shipped the authoritative copies).
    pub discarded: BTreeSet<u64>,
    /// Keys an *initial* half-split transferred to the new sibling
    /// (a subsequent action).
    pub moved_to_sibling: BTreeSet<u64>,
}

/// A copy history `H_c = I_c · a_1 … a_m` (§3.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct History {
    /// The copy's original value `I_c`.
    pub initial: NodeValue,
    /// Update actions in execution order.
    pub actions: Vec<Action>,
}

/// Why two histories are not compatible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompatibleError {
    /// Final values differ.
    FinalValue {
        /// Final value of the left history.
        left: NodeValue,
        /// Final value of the right history.
        right: NodeValue,
    },
    /// Uniform update multisets differ (tags present in one but not the
    /// other).
    UniformActions {
        /// Tags only in the left history.
        only_left: Vec<u64>,
        /// Tags only in the right history.
        only_right: Vec<u64>,
    },
}

impl fmt::Display for CompatibleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompatibleError::FinalValue { left, right } => {
                write!(f, "final values differ: {left:?} vs {right:?}")
            }
            CompatibleError::UniformActions {
                only_left,
                only_right,
            } => write!(
                f,
                "uniform actions differ: only-left {only_left:?}, only-right {only_right:?}"
            ),
        }
    }
}

impl History {
    /// A history starting from `initial` with no actions yet.
    pub fn new(initial: NodeValue) -> Self {
        History {
            initial,
            actions: Vec::new(),
        }
    }

    /// Append an action.
    pub fn push(&mut self, a: Action) {
        self.actions.push(a);
    }

    /// Replay to the final value, accumulating effects.
    pub fn final_value(&self) -> (NodeValue, Effects) {
        let mut v = self.initial.clone();
        let mut total = Effects::default();
        for a in &self.actions {
            let (nv, fx) = a.apply(&v);
            v = nv;
            total.routed_right.extend(fx.routed_right);
            total.discarded.extend(fx.discarded);
            total.moved_to_sibling.extend(fx.moved_to_sibling);
        }
        (v, total)
    }

    /// The uniform history `U(H)`: update tags with the initial/relayed
    /// distinction removed, order preserved.
    pub fn uniform(&self) -> Vec<u64> {
        self.actions.iter().map(Action::tag).collect()
    }

    /// Backwards extension (§3.1): prepend `prefix`'s actions, replacing this
    /// history's initial value with the prefix's. The result has the same
    /// final value as `self` when `prefix` replays to `self.initial`.
    pub fn backwards_extend(&self, prefix: &History) -> History {
        let mut actions = prefix.actions.clone();
        actions.extend(self.actions.iter().copied());
        History {
            initial: prefix.initial.clone(),
            actions,
        }
    }

    /// The compatibility relation `H_1 ≡ H_2` (§3.1): same final value and
    /// same uniform update actions (as multisets — the rearrangement the
    /// paper allows means order is not compared).
    pub fn compatible(&self, other: &History) -> Result<(), CompatibleError> {
        let (lv, _) = self.final_value();
        let (rv, _) = other.final_value();
        if lv != rv {
            return Err(CompatibleError::FinalValue {
                left: lv,
                right: rv,
            });
        }
        let mut l = self.uniform();
        let mut r = other.uniform();
        l.sort_unstable();
        r.sort_unstable();
        if l != r {
            let only_left: Vec<u64> = l.iter().filter(|t| !r.contains(t)).copied().collect();
            let only_right: Vec<u64> = r.iter().filter(|t| !l.contains(t)).copied().collect();
            return Err(CompatibleError::UniformActions {
                only_left,
                only_right,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ins(tag: u64, key: u64, initial: bool) -> Action {
        Action::Insert { tag, key, initial }
    }
    fn split(tag: u64, at: u64, sib: u64, initial: bool) -> Action {
        Action::HalfSplit {
            tag,
            at,
            sib,
            initial,
        }
    }
    fn retire(tag: u64, fwd: u64, initial: bool) -> Action {
        Action::Retire { tag, fwd, initial }
    }
    fn absorb(tag: u64, to: u64, right: u64, initial: bool) -> Action {
        Action::Absorb {
            tag,
            to,
            right,
            initial,
        }
    }

    /// Fig 3: two copies of a parent receive inserts for new siblings A' and
    /// B' in opposite orders; the copies converge.
    #[test]
    fn fig3_lazy_inserts_commute() {
        let parent = NodeValue::new(0, None);
        let mut h1 = History::new(parent.clone());
        let mut h2 = History::new(parent);
        // Copy 1 sees I(A') then i(B'); copy 2 sees I(B') then i(A').
        h1.push(ins(1, 10, true));
        h1.push(ins(2, 20, false));
        h2.push(ins(2, 20, true));
        h2.push(ins(1, 10, false));
        h1.compatible(&h2).expect("Fig 3: inserts commute");
    }

    /// Relayed half-splits commute with relayed inserts (§4.1 rule 3): the
    /// final value is order-independent.
    #[test]
    fn relayed_split_commutes_with_relayed_insert() {
        let mut base = NodeValue::new(0, None);
        base.keys.insert(5);
        let mut h1 = History::new(base.clone());
        let mut h2 = History::new(base);
        // h1: insert 3 then split at 10; h2: split at 10 then insert 3.
        h1.push(ins(1, 3, false));
        h1.push(split(2, 10, 99, false));
        h2.push(split(2, 10, 99, false));
        h2.push(ins(1, 3, false));
        h1.compatible(&h2).expect("commute when key stays in range");
    }

    /// §4.1 rule 2: half-splits do NOT commute — the right-sibling pointer
    /// depends on order.
    #[test]
    fn half_splits_do_not_commute() {
        let base = NodeValue::new(0, None);
        let mut h1 = History::new(base.clone());
        let mut h2 = History::new(base);
        h1.push(split(1, 10, 100, true));
        h1.push(split(2, 5, 101, false));
        h2.push(split(2, 5, 101, true));
        h2.push(split(1, 10, 100, false));
        let err = h1.compatible(&h2).unwrap_err();
        assert!(matches!(err, CompatibleError::FinalValue { .. }));
    }

    /// Fig 4, replayed in the model: if a relayed insert for a key that a
    /// split moved away is *discarded* instead of re-routed, the copies end
    /// with different key sets → incompatible final values.
    #[test]
    fn fig4_lost_insert_breaks_compatibility() {
        let base = NodeValue::new(0, None);
        // Copy c performs I4 (key 15) then relayed split s1 at 10 — the key
        // moves to the sibling; locally fine.
        let mut hc = History::new(base.clone());
        hc.push(ins(4, 15, true));
        hc.push(split(1, 10, 100, false));
        // PC performs S1 first, then receives i4: out of range → discarded
        // (the naive protocol). The final values happen to agree here (both
        // lost key 15 from this node) — which is exactly the insidious part:
        // the *node* histories agree while the key vanished from the
        // structure. The model records it in the effects.
        let mut hpc = History::new(base);
        hpc.push(split(1, 10, 100, true));
        hpc.push(ins(4, 15, false));
        hc.compatible(&hpc).expect("node-local histories agree");
        let (_, fx_c) = hc.final_value();
        let (_, fx_pc) = hpc.final_value();
        // The key is dropped everywhere: copy c's *relayed* split removes
        // it with no subsequent action (the PC's initial split never saw
        // it), and the PC discards the late relay. Nothing ships the key to
        // the sibling — the lost insert of Fig 4.
        assert!(fx_c.discarded.contains(&15));
        assert!(fx_c.moved_to_sibling.is_empty());
        assert!(fx_pc.discarded.contains(&15));
    }

    /// The semisync fix: the PC *re-routes* the out-of-range relayed insert
    /// (rewriting history so i precedes S). Modelled as the insert arriving
    /// as an initial action, whose effect is routed right, not dropped.
    #[test]
    fn fig5_semisync_rewrite_preserves_the_key() {
        let base = NodeValue::new(0, None);
        let mut hpc = History::new(base);
        hpc.push(split(1, 10, 100, true));
        hpc.push(ins(4, 15, true)); // PC turns the relay into an initial insert
        let (_, fx) = hpc.final_value();
        assert!(fx.routed_right.contains(&15), "key forwarded, not lost");
        assert!(fx.discarded.is_empty());
    }

    #[test]
    fn backwards_extension_preserves_final_value() {
        let mut prefix = History::new(NodeValue::new(0, None));
        prefix.push(ins(1, 1, true));
        prefix.push(ins(2, 2, true));
        let (mid, _) = prefix.final_value();
        let mut h = History::new(mid);
        h.push(ins(3, 3, true));
        let ext = h.backwards_extend(&prefix);
        assert_eq!(ext.final_value().0, h.final_value().0);
        assert_eq!(ext.uniform(), vec![1, 2, 3]);
    }

    #[test]
    fn uniform_erases_initial_flag() {
        let mut h1 = History::new(NodeValue::new(0, None));
        let mut h2 = History::new(NodeValue::new(0, None));
        h1.push(ins(7, 3, true));
        h2.push(ins(7, 3, false));
        assert_eq!(h1.uniform(), h2.uniform());
    }

    /// Grant-then-commit, in the model: an initial retire against a node
    /// that regained a key is a no-op — the commit re-verify declines.
    #[test]
    fn initial_retire_declines_on_live_keys() {
        let mut v = NodeValue::new(10, Some(20));
        v.keys.insert(15);
        let (after, fx) = retire(1, 7, true).apply(&v);
        assert_eq!(after, v, "re-verify must refuse to drop a live key");
        assert_eq!(fx, Effects::default());
    }

    /// A committed retire collapses the range and forwards right; a relayed
    /// retire at a stale copy additionally discards whatever the copy still
    /// held (tombstone stamps dominate those entries).
    #[test]
    fn retire_collapses_range_and_forwards() {
        let v = NodeValue::new(10, Some(20));
        let (after, _) = retire(1, 7, true).apply(&v);
        assert_eq!(after.high, Some(10));
        assert_eq!(after.right, 7);

        let mut stale = NodeValue::new(10, Some(20));
        stale.keys.insert(12);
        let (after, fx) = retire(1, 7, false).apply(&stale);
        assert!(after.keys.is_empty());
        assert!(fx.discarded.contains(&12));
    }

    /// The merge pair in sequence: the absorber's range grows to exactly
    /// cover what the retired neighbour gave up, and it adopts the retired
    /// node's right sibling — the leaf chain stays a tiling.
    #[test]
    fn retire_then_absorb_tiles_the_chain() {
        let mut left = NodeValue::new(0, Some(10));
        left.right = 5; // the neighbour about to retire
        let neighbour = NodeValue::new(10, Some(20));
        let (n_after, _) = retire(1, /* fwd = left */ 4, true).apply(&neighbour);
        assert_eq!(n_after.high, Some(n_after.low), "retired range is empty");
        let (l_after, _) = absorb(2, 20, /* neighbour.right */ 9, true).apply(&left);
        assert_eq!(l_after.high, Some(20), "absorber covers the gap");
        assert_eq!(l_after.right, 9, "absorber adopts the retired right link");
    }

    /// Relayed retires commute with relayed inserts — both orders leave an
    /// empty, forwarded node — which is why retirement can ride the lazy
    /// relay stream without an AAS.
    #[test]
    fn relayed_retire_commutes_with_relayed_insert() {
        let base = NodeValue::new(0, Some(100));
        let mut h1 = History::new(base.clone());
        let mut h2 = History::new(base);
        h1.push(ins(1, 3, false));
        h1.push(retire(2, 7, false));
        h2.push(retire(2, 7, false));
        h2.push(ins(1, 3, false));
        h1.compatible(&h2).expect("r and i commute");
    }

    /// Absorbs do not commute with each other: like half-splits, the final
    /// right pointer depends on order. This is why relayed absorbs carry an
    /// epoch counter and apply in sequence.
    #[test]
    fn absorbs_do_not_commute() {
        let base = NodeValue::new(0, Some(10));
        let mut h1 = History::new(base.clone());
        let mut h2 = History::new(base);
        h1.push(absorb(1, 20, 100, true));
        h1.push(absorb(2, 30, 200, false));
        h2.push(absorb(2, 30, 200, true));
        h2.push(absorb(1, 20, 100, false));
        let err = h1.compatible(&h2).unwrap_err();
        assert!(matches!(err, CompatibleError::FinalValue { .. }));
    }

    /// Absorb commutes with in-range inserts: it only ever *widens* the
    /// range, so no insert's routing decision can change across it. This is
    /// the model-level form of "retirement commutes with leaf writes".
    #[test]
    fn absorb_commutes_with_inserts() {
        let mut base = NodeValue::new(0, Some(10));
        base.keys.insert(3);
        for initial in [true, false] {
            let mut h1 = History::new(base.clone());
            let mut h2 = History::new(base.clone());
            h1.push(ins(1, 5, initial));
            h1.push(absorb(2, 20, 100, false));
            h2.push(absorb(2, 20, 100, false));
            h2.push(ins(1, 5, initial));
            h1.compatible(&h2).expect("absorb is range-widening only");
        }
    }

    #[test]
    fn incompatible_when_tags_differ() {
        let mut h1 = History::new(NodeValue::new(0, None));
        let mut h2 = History::new(NodeValue::new(0, None));
        h1.push(ins(1, 3, true));
        h2.push(ins(1, 3, true));
        h2.push(ins(2, 3, false)); // same key, extra tag: same value, diff tags
        let err = h1.compatible(&h2).unwrap_err();
        assert!(matches!(err, CompatibleError::UniformActions { .. }));
    }
}
