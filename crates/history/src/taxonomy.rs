//! Mechanical derivation of the paper's §4.1 commutativity table.
//!
//! "The first step in designing a distributed algorithm is to specify the
//! commutativity relationships between actions." The paper states four
//! rules for insert and half-split actions; this module *derives* them by
//! checking, over the formal model, whether exchanging two adjacent actions
//! preserves (a) the copy's final value, (b) validity, and (c) the
//! subsequent-action set (the observable effects). An action pair commutes
//! iff all three are preserved for every state — here checked over a
//! caller-supplied sample of states, and over exhaustive small domains in
//! the tests.
//!
//! The classification drives the lazy/semi-synchronous/synchronous taxonomy
//! of §3.2: pairs that always commute need no synchronization (lazy);
//! pairs that conflict only with specific orders need ordering
//! (semi-synchronous); the rest need an AAS (synchronous).

use crate::model::{Action, NodeValue};

/// The result of checking one ordered pair of actions against one state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PairVerdict {
    /// Exchanging the two actions changes nothing observable.
    Commutes,
    /// The final value differs between orders.
    ValueConflict,
    /// The final values agree but the observable effects (subsequent
    /// actions) differ — the orders are distinguishable to the rest of the
    /// structure.
    EffectConflict,
}

/// Check whether `a` and `b` commute on `state`: apply in both orders and
/// compare final values and accumulated effects.
pub fn check_pair(a: Action, b: Action, state: &NodeValue) -> PairVerdict {
    let (v1a, fx1a) = a.apply(state);
    let (v1, fx1b) = b.apply(&v1a);
    let (v2b, fx2b) = b.apply(state);
    let (v2, fx2a) = a.apply(&v2b);
    if v1 != v2 {
        return PairVerdict::ValueConflict;
    }
    // Subsequent-action sets must agree (`discarded` is excluded: a discard
    // has no subsequent action, which is exactly why relayed actions are so
    // permissive — the paper's rule 3).
    let union1 = (
        fx1a.routed_right
            .union(&fx1b.routed_right)
            .copied()
            .collect::<Vec<_>>(),
        fx1a.moved_to_sibling
            .union(&fx1b.moved_to_sibling)
            .copied()
            .collect::<Vec<_>>(),
    );
    let union2 = (
        fx2a.routed_right
            .union(&fx2b.routed_right)
            .copied()
            .collect::<Vec<_>>(),
        fx2a.moved_to_sibling
            .union(&fx2b.moved_to_sibling)
            .copied()
            .collect::<Vec<_>>(),
    );
    if union1 != union2 {
        return PairVerdict::EffectConflict;
    }
    PairVerdict::Commutes
}

/// Check a pair over many states: the pair *commutes* only if it commutes
/// on every state. Returns the first conflicting verdict found, else
/// `Commutes`.
pub fn check_pair_over<'a>(
    a: Action,
    b: Action,
    states: impl IntoIterator<Item = &'a NodeValue>,
) -> PairVerdict {
    for s in states {
        let v = check_pair(a, b, s);
        if v != PairVerdict::Commutes {
            return v;
        }
    }
    PairVerdict::Commutes
}

/// The §4.1 action shapes, for table derivation: the paper's four
/// insert/half-split shapes plus the merge family's retire and absorb
/// (beyond the paper, which leaves merging as future work).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Shape {
    /// Initial insert `I`.
    InsertInitial,
    /// Relayed insert `i`.
    InsertRelayed,
    /// Initial half-split `S`.
    SplitInitial,
    /// Relayed half-split `s`.
    SplitRelayed,
    /// Initial (commit-time) retire `R`.
    RetireInitial,
    /// Relayed retire `r`.
    RetireRelayed,
    /// Initial absorb `A`.
    AbsorbInitial,
    /// Relayed absorb `a`.
    AbsorbRelayed,
}

impl Shape {
    /// All eight shapes.
    pub const ALL: [Shape; 8] = [
        Shape::InsertInitial,
        Shape::InsertRelayed,
        Shape::SplitInitial,
        Shape::SplitRelayed,
        Shape::RetireInitial,
        Shape::RetireRelayed,
        Shape::AbsorbInitial,
        Shape::AbsorbRelayed,
    ];

    /// Instantiate with concrete parameters. `param` is the key, split
    /// point, or absorb bound; `sib` is the sibling, forward target, or
    /// adopted right link.
    pub fn instantiate(self, tag: u64, param: u64, sib: u64) -> Action {
        match self {
            Shape::InsertInitial => Action::Insert {
                tag,
                key: param,
                initial: true,
            },
            Shape::InsertRelayed => Action::Insert {
                tag,
                key: param,
                initial: false,
            },
            Shape::SplitInitial => Action::HalfSplit {
                tag,
                at: param,
                sib,
                initial: true,
            },
            Shape::SplitRelayed => Action::HalfSplit {
                tag,
                at: param,
                sib,
                initial: false,
            },
            Shape::RetireInitial => Action::Retire {
                tag,
                fwd: sib,
                initial: true,
            },
            Shape::RetireRelayed => Action::Retire {
                tag,
                fwd: sib,
                initial: false,
            },
            Shape::AbsorbInitial => Action::Absorb {
                tag,
                to: param,
                right: sib,
                initial: true,
            },
            Shape::AbsorbRelayed => Action::Absorb {
                tag,
                to: param,
                right: sib,
                initial: false,
            },
        }
    }

    /// Short label matching the paper's notation.
    pub fn label(self) -> &'static str {
        match self {
            Shape::InsertInitial => "I",
            Shape::InsertRelayed => "i",
            Shape::SplitInitial => "S",
            Shape::SplitRelayed => "s",
            Shape::RetireInitial => "R",
            Shape::RetireRelayed => "r",
            Shape::AbsorbInitial => "A",
            Shape::AbsorbRelayed => "a",
        }
    }
}

/// Derive the §4.1 commutativity table over an exhaustive small domain:
/// all states with keys ⊆ {1..=max_key}, all parameter choices in the same
/// range. Returns `(first shape, second shape, commutes?)` for every
/// ordered pair.
pub fn derive_table(max_key: u64) -> Vec<(Shape, Shape, bool)> {
    // Enumerate states: key subsets of a small universe (unbounded range).
    let universe: Vec<u64> = (1..=max_key).collect();
    let mut states = Vec::new();
    for mask in 0..(1u32 << universe.len()) {
        let mut v = NodeValue::new(0, None);
        for (i, &k) in universe.iter().enumerate() {
            if mask >> i & 1 == 1 {
                v.keys.insert(k);
            }
        }
        states.push(v);
    }

    let mut table = Vec::new();
    for &sa in &Shape::ALL {
        for &sb in &Shape::ALL {
            let mut commutes = true;
            'search: for &pa in &universe {
                for &pb in &universe {
                    // Distinct tags/sibling names: the actions are distinct
                    // updates.
                    let a = sa.instantiate(1, pa, 100);
                    let b = sb.instantiate(2, pb, 200);
                    if check_pair_over(a, b, &states) != PairVerdict::Commutes {
                        commutes = false;
                        break 'search;
                    }
                }
            }
            table.push((sa, sb, commutes));
        }
    }
    table
}

impl Shape {
    /// Inverse of [`Shape::label`].
    pub fn from_label(label: &str) -> Option<Shape> {
        Shape::ALL.into_iter().find(|s| s.label() == label)
    }
}

/// Does every instantiation of shape `a` commute with every instantiation
/// of shape `b`? This is the model checker's independence relation for
/// same-processor action pairs: answered from the §4.1 table derived once
/// (exhaustively, over the key domain `{1..=4}` — the same domain the
/// property tests cross-validate against brute-force permutation) and
/// cached for the life of the process.
pub fn shapes_commute(a: Shape, b: Shape) -> bool {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Vec<(Shape, Shape, bool)>> = OnceLock::new();
    let table = TABLE.get_or_init(|| derive_table(4));
    table
        .iter()
        .find(|(x, y, _)| *x == a && *y == b)
        .expect("derive_table covers all ordered shape pairs")
        .2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup(table: &[(Shape, Shape, bool)], a: Shape, b: Shape) -> bool {
        table
            .iter()
            .find(|(x, y, _)| *x == a && *y == b)
            .expect("pair in table")
            .2
    }

    /// The derived table reproduces the paper's §4.1 rules:
    /// 1. any two inserts commute;
    /// 2. half-splits do not commute with each other;
    /// 3. relayed half-splits commute with relayed inserts but not with
    ///    initial inserts;
    /// 4. initial half-splits do not commute with relayed inserts.
    #[test]
    fn derived_table_matches_the_papers_rules() {
        let t = derive_table(4);
        use Shape::*;

        // Rule 1: inserts commute in every combination.
        for a in [InsertInitial, InsertRelayed] {
            for b in [InsertInitial, InsertRelayed] {
                assert!(lookup(&t, a, b), "{}/{} must commute", a.label(), b.label());
            }
        }
        // Rule 2: splits conflict with splits.
        for a in [SplitInitial, SplitRelayed] {
            for b in [SplitInitial, SplitRelayed] {
                assert!(
                    !lookup(&t, a, b),
                    "{}/{} must conflict",
                    a.label(),
                    b.label()
                );
            }
        }
        // Rule 3: relayed split vs relayed insert commutes...
        assert!(lookup(&t, SplitRelayed, InsertRelayed));
        assert!(lookup(&t, InsertRelayed, SplitRelayed));
        // ...but relayed split vs *initial* insert conflicts (the initial
        // insert's subsequent action changes if the split moved its range).
        assert!(!lookup(&t, SplitRelayed, InsertInitial));
        assert!(!lookup(&t, InsertInitial, SplitRelayed));
        // Rule 4: initial split vs relayed insert conflicts (the key
        // either does or does not make it into the new sibling).
        assert!(!lookup(&t, SplitInitial, InsertRelayed));
        assert!(!lookup(&t, InsertRelayed, SplitInitial));
    }

    /// The merge family's rows of the derived table, which is what lets
    /// retirement ride the existing machinery:
    /// 1. relayed retires commute with relayed inserts (they ride the lazy
    ///    relay stream like any leaf write);
    /// 2. absorbs commute with inserts in every combination (absorb only
    ///    widens the range, so no routing decision changes);
    /// 3. initial retires conflict with initial inserts (the grant-time and
    ///    commit-time emptiness checks exist exactly for this);
    /// 4. structural actions — splits, retires, absorbs — all conflict with
    ///    each other (right-pointer and bound order dependence), so relayed
    ///    absorbs carry an epoch counter and apply in sequence.
    #[test]
    fn derived_table_covers_the_merge_family() {
        let t = derive_table(4);
        use Shape::*;

        // Rule 1: r/i commute both ways.
        assert!(lookup(&t, RetireRelayed, InsertRelayed));
        assert!(lookup(&t, InsertRelayed, RetireRelayed));
        // Rule 2: absorbs commute with all inserts.
        for a in [AbsorbInitial, AbsorbRelayed] {
            for b in [InsertInitial, InsertRelayed] {
                assert!(lookup(&t, a, b), "{}/{} must commute", a.label(), b.label());
                assert!(lookup(&t, b, a), "{}/{} must commute", b.label(), a.label());
            }
        }
        // Rule 3: initial retire vs initial insert conflicts (the re-verify
        // outcome depends on order), and a relayed retire vs an *initial*
        // insert conflicts too (the insert's routing changes) — the
        // reroute-don't-discard path in the relay layer handles this.
        assert!(!lookup(&t, RetireInitial, InsertInitial));
        assert!(!lookup(&t, InsertInitial, RetireInitial));
        assert!(!lookup(&t, RetireRelayed, InsertInitial));
        // Rule 4: every structural pair conflicts.
        let structural = [
            SplitInitial,
            SplitRelayed,
            RetireInitial,
            RetireRelayed,
            AbsorbInitial,
            AbsorbRelayed,
        ];
        for a in structural {
            for b in structural {
                assert!(
                    !lookup(&t, a, b),
                    "{}/{} must conflict",
                    a.label(),
                    b.label()
                );
            }
        }
    }

    #[test]
    fn check_pair_detects_value_conflicts() {
        let mut state = NodeValue::new(0, None);
        state.keys.extend([1, 2, 3]);
        let s1 = Shape::SplitInitial.instantiate(1, 2, 100);
        let s2 = Shape::SplitRelayed.instantiate(2, 3, 200);
        assert_eq!(check_pair(s1, s2, &state), PairVerdict::ValueConflict);
    }

    #[test]
    fn check_pair_detects_effect_conflicts() {
        // Insert key 5 and split at 5: the final node value is the same in
        // both orders (5 ends up outside either way), but in one order the
        // key moves to the sibling and in the other it is discarded/routed —
        // observable to the rest of the structure.
        let state = NodeValue::new(0, None);
        let ins = Shape::InsertRelayed.instantiate(1, 5, 0);
        let split = Shape::SplitInitial.instantiate(2, 5, 100);
        let v = check_pair(ins, split, &state);
        assert_ne!(v, PairVerdict::Commutes);
    }

    #[test]
    fn shapes_commute_matches_the_derived_table() {
        for (a, b, commutes) in derive_table(4) {
            assert_eq!(
                shapes_commute(a, b),
                commutes,
                "{}/{}",
                a.label(),
                b.label()
            );
        }
        assert_eq!(Shape::from_label("i"), Some(Shape::InsertRelayed));
        assert_eq!(Shape::from_label("A"), Some(Shape::AbsorbInitial));
        assert_eq!(Shape::from_label("x"), None);
    }

    #[test]
    fn same_key_relayed_inserts_commute() {
        let mut state = NodeValue::new(0, None);
        state.keys.insert(7);
        let a = Shape::InsertRelayed.instantiate(1, 7, 0);
        let b = Shape::InsertRelayed.instantiate(2, 7, 0);
        assert_eq!(check_pair(a, b, &state), PairVerdict::Commutes);
    }
}
