//! # history — the paper's copy-correctness theory, executable
//!
//! Section 3 of the paper defines when a lazy replica-maintenance algorithm
//! is correct. This crate implements that theory twice, at two altitudes:
//!
//! * [`model`] — the formal objects themselves: copy histories `(I_c, A_c)`,
//!   backwards extensions, uniform histories, validity, and the
//!   *compatible histories* relation. A small concrete action vocabulary
//!   (insert / half-split over a toy node value) makes the definitions
//!   executable, and the crate's tests replay Figs 3 and 4 against them.
//! * [`log`] — a runtime recorder that a protocol implementation feeds with
//!   every issued and performed update action. At the end of a computation,
//!   [`log::HistoryLog::check`] verifies the three requirements the paper's
//!   theorems establish:
//!   - **Complete histories** — every issued update action was eventually
//!     observed by the structure (nothing silently lost);
//!   - **Compatible histories** — for every node, each live copy observed
//!     exactly the node's initial-update set `M_n` (modulo its creation
//!     snapshot) and all copies reached the same final value;
//!   - **Ordered histories** — actions of an ordered class (link-changes,
//!     with version numbers as the total order) were applied in order at
//!     every copy.
//!
//! The `dbtree` crate calls into [`log`] from every protocol, so a protocol
//! bug (like the deliberately broken "naive" protocol of Fig 4) surfaces as
//! a typed violation rather than a silent wrong answer.

#![warn(missing_docs)]

pub mod log;
pub mod model;
pub mod oracle;
pub mod taxonomy;

pub use log::{fnv1a, HistoryLog, LogSummary, ObserveKind, Violation};
pub use model::{Action, CompatibleError, History, NodeValue};
pub use oracle::{check_sequences, SeqAction, SeqViolation};
pub use taxonomy::{check_pair, derive_table, shapes_commute, PairVerdict, Shape};
