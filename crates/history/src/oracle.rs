//! The sequence oracle: §3's history requirements checked against the
//! *order* in which copies applied updates, not just the sets they ended up
//! with.
//!
//! [`crate::log::HistoryLog::check`] verifies completeness and convergence
//! from coverage sets and final digests. That misses a class of bug the
//! paper's theory is specifically about: two copies can cover the same
//! update set and still have applied a *conflicting* pair of actions in
//! opposite orders — their agreement at the end of one run is then a
//! coincidence of the workload, not a guarantee. This module reconstructs
//! each copy's history `H_c` (recorded by the log as its applied sequence)
//! and asserts the §3.1 compatibility condition directly: whenever two live
//! copies of a node applied the same pair of updates in opposite orders,
//! that pair must commute — under the class taxonomy of §4.1, as supplied
//! by the caller through a conflict relation.
//!
//! The relation receives each action *as the copy saw it* (class + the
//! initial/relayed flag), because commutativity in the paper is a property
//! of action forms, not of update identities: rule 3 lets a relayed
//! half-split commute with a relayed insert while the initial forms of the
//! same updates conflict. A reordered pair is a violation only if it
//! conflicts under **both** copies' views — if either copy saw forms that
//! commute, that copy's order is free, and the paper permits the
//! discrepancy.

use std::collections::HashMap;
use std::fmt;

use crate::log::HistoryLog;

/// One applied action, as presented to the conflict relation: the §4.1
/// classification inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeqAction {
    /// The update's uniform identity (log tag).
    pub tag: u64,
    /// The class given at issue time (`"split"`, `"leaf-write"`, …).
    pub class: &'static str,
    /// Was this the *initial* (capital-letter) form at this copy?
    pub initial: bool,
}

/// A violation found by the sequence oracle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SeqViolation {
    /// Complete-history violation: an issued update observed nowhere.
    Lost {
        /// The lost update's tag.
        tag: u64,
        /// Its issue-time class.
        class: &'static str,
    },
    /// Compatible-history violation: two live copies of a node applied a
    /// conflicting pair of updates in opposite orders.
    ConflictingReorder {
        /// The logical node.
        node: u64,
        /// The copy that applied `first` before `second`.
        proc_a: u32,
        /// The copy that applied them in the opposite order.
        proc_b: u32,
        /// The earlier action in `proc_a`'s history (its view).
        first: SeqAction,
        /// The later action in `proc_a`'s history (its view).
        second: SeqAction,
    },
    /// Ordered-history violation: an ordered-class action was applied after
    /// one that should follow it.
    OrderedRegressed {
        /// The logical node.
        node: u64,
        /// The processor holding the copy.
        proc: u32,
        /// The ordered class.
        class: &'static str,
        /// Order key applied earlier.
        prev: u64,
        /// Order key applied after it (≤ `prev`).
        next: u64,
    },
}

impl fmt::Display for SeqViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqViolation::Lost { tag, class } => {
                write!(f, "sequence oracle: lost update #{tag} ({class})")
            }
            SeqViolation::ConflictingReorder {
                node,
                proc_a,
                proc_b,
                first,
                second,
            } => write!(
                f,
                "sequence oracle: node {node} applied conflicting pair in opposite orders: \
                 P{proc_a} ran #{} ({}) before #{} ({}); P{proc_b} ran them reversed",
                first.tag, first.class, second.tag, second.class
            ),
            SeqViolation::OrderedRegressed {
                node,
                proc,
                class,
                prev,
                next,
            } => write!(
                f,
                "sequence oracle: node {node} at P{proc}: {class} regressed ({next} after {prev})"
            ),
        }
    }
}

/// A class-level conflict relation: `true` when the two action forms do NOT
/// commute. Receives each action as one particular copy saw it.
pub type ConflictFn<'a> = &'a dyn Fn(SeqAction, SeqAction) -> bool;

/// Run the sequence oracle over a finished log.
///
/// Checks, in order: completeness (every issued tag observed somewhere),
/// orderedness (every copy's ordered-class sequence is strictly
/// increasing), and compatibility (no conflicting pair applied in opposite
/// orders by two live copies of the same node, judged by `conflicts` — see
/// the module docs for why both copies' views must conflict).
pub fn check_sequences(log: &HistoryLog, conflicts: ConflictFn<'_>) -> Vec<SeqViolation> {
    let mut out = Vec::new();
    // Completeness, independently of HistoryLog::check.
    for (tag, class) in log.issued_actions() {
        if !log.was_observed(tag) {
            out.push(SeqViolation::Lost { tag, class });
        }
    }
    // Orderedness: re-derive monotonicity from the raw sequences.
    for (node, proc, seq) in log.ordered_sequences() {
        let mut high: HashMap<&'static str, u64> = HashMap::new();
        for &(class, order) in seq {
            if let Some(&prev) = high.get(class) {
                if order <= prev {
                    out.push(SeqViolation::OrderedRegressed {
                        node,
                        proc,
                        class,
                        prev,
                        next: order,
                    });
                    continue;
                }
            }
            high.insert(class, order);
        }
    }
    // Compatibility: pairwise reorder scan over live copies of each node.
    for (node, copies) in log.applied_sequences() {
        for (i, &(proc_a, seq_a)) in copies.iter().enumerate() {
            for &(proc_b, seq_b) in &copies[i + 1..] {
                scan_pair(log, node, proc_a, seq_a, proc_b, seq_b, conflicts, &mut out);
            }
        }
    }
    out
}

/// Report every conflicting pair two copies applied in opposite orders.
#[allow(clippy::too_many_arguments)]
fn scan_pair(
    log: &HistoryLog,
    node: u64,
    proc_a: u32,
    seq_a: &[(u64, bool)],
    proc_b: u32,
    seq_b: &[(u64, bool)],
    conflicts: ConflictFn<'_>,
    out: &mut Vec<SeqViolation>,
) {
    // Position and view of each tag at copy b.
    let pos_b: HashMap<u64, (usize, bool)> = seq_b
        .iter()
        .enumerate()
        .map(|(i, &(tag, initial))| (tag, (i, initial)))
        .collect();
    // Common subsequence as copy a ordered it.
    let common: Vec<(u64, bool)> = seq_a
        .iter()
        .filter(|(tag, _)| pos_b.contains_key(tag))
        .copied()
        .collect();
    let action = |tag: u64, initial: bool| SeqAction {
        tag,
        class: log.class_of(tag).unwrap_or("?"),
        initial,
    };
    for (i, &(x, x_init)) in common.iter().enumerate() {
        for &(y, y_init) in &common[i + 1..] {
            let (bx, bx_init) = pos_b[&x];
            let (by, by_init) = pos_b[&y];
            if by >= bx {
                continue; // same relative order at both copies
            }
            let first_a = action(x, x_init);
            let second_a = action(y, y_init);
            let first_b = action(x, bx_init);
            let second_b = action(y, by_init);
            // A reorder is illegal only when the pair conflicts under both
            // copies' views (see module docs).
            if conflicts(first_a, second_a) && conflicts(first_b, second_b) {
                out.push(SeqViolation::ConflictingReorder {
                    node,
                    proc_a,
                    proc_b,
                    first: first_a,
                    second: second_a,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::ObserveKind;

    /// Splits conflict with each other; writes commute; a split conflicts
    /// with a write when either form is initial (§4.1 rules 2–4).
    fn db_like(a: SeqAction, b: SeqAction) -> bool {
        let split = |s: SeqAction| s.class == "split";
        if split(a) && split(b) {
            return true;
        }
        if split(a) || split(b) {
            return a.initial || b.initial;
        }
        false
    }

    #[test]
    fn clean_log_passes() {
        let mut log = HistoryLog::new();
        let t1 = log.issue("leaf-write");
        let t2 = log.issue("leaf-write");
        for p in 0..2 {
            log.copy_created(7, p, []);
        }
        // Opposite orders, but writes commute.
        log.observe(7, 0, t1, ObserveKind::Applied);
        log.observe(7, 0, t2, ObserveKind::Applied);
        log.observe(7, 1, t2, ObserveKind::Applied);
        log.observe(7, 1, t1, ObserveKind::Applied);
        assert_eq!(check_sequences(&log, &db_like), vec![]);
    }

    #[test]
    fn reordered_splits_flagged() {
        let mut log = HistoryLog::new();
        let s1 = log.issue("split");
        let s2 = log.issue("split");
        log.copy_created(7, 0, []);
        log.copy_created(7, 1, []);
        log.observe_initial(7, 0, s1);
        log.observe(7, 0, s2, ObserveKind::Applied);
        log.observe_initial(7, 1, s2);
        log.observe(7, 1, s1, ObserveKind::Applied);
        let violations = check_sequences(&log, &db_like);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, SeqViolation::ConflictingReorder { node: 7, .. })),
            "got {violations:?}"
        );
    }

    #[test]
    fn relayed_reorder_is_legal_when_one_view_commutes() {
        // The PC saw both as initial (conflict); the replica saw both
        // relayed (rule 3: commute) — the replica's order is free, so the
        // inversion is legal.
        let mut log = HistoryLog::new();
        let w = log.issue("leaf-write");
        let s = log.issue("split");
        log.copy_created(7, 0, []);
        log.copy_created(7, 1, []);
        log.observe_initial(7, 0, s);
        log.observe_initial(7, 0, w);
        log.observe(7, 1, w, ObserveKind::Applied);
        log.observe(7, 1, s, ObserveKind::Applied);
        assert_eq!(check_sequences(&log, &db_like), vec![]);
    }

    #[test]
    fn lost_and_regressed_reported() {
        let mut log = HistoryLog::new();
        let _ghost = log.issue("leaf-write");
        log.copy_created(1, 0, []);
        log.ordered_applied(1, 0, "link-change", 5);
        log.ordered_applied(1, 0, "link-change", 4);
        let violations = check_sequences(&log, &db_like);
        assert!(violations
            .iter()
            .any(|v| matches!(v, SeqViolation::Lost { .. })));
        assert!(violations.iter().any(|v| matches!(
            v,
            SeqViolation::OrderedRegressed {
                prev: 5,
                next: 4,
                ..
            }
        )));
    }

    #[test]
    fn dead_copies_are_exempt() {
        let mut log = HistoryLog::new();
        let s1 = log.issue("split");
        let s2 = log.issue("split");
        log.copy_created(7, 0, []);
        log.copy_created(7, 1, []);
        log.observe_initial(7, 0, s1);
        log.observe(7, 0, s2, ObserveKind::Applied);
        log.observe_initial(7, 1, s2);
        log.observe(7, 1, s1, ObserveKind::Applied);
        log.copy_deleted(7, 1);
        assert_eq!(check_sequences(&log, &db_like), vec![]);
    }
}
