//! Runtime recorder for protocol executions.
//!
//! A protocol implementation reports three things while it runs:
//!
//! 1. every *issued* update action ([`HistoryLog::issue`] allocates the tag
//!    that then travels inside protocol messages),
//! 2. every *observation* of an update at a copy — applied, discarded as
//!    out-of-range, or forwarded onward ([`HistoryLog::observe`] /
//!    [`HistoryLog::observe_initial`]), and
//! 3. replication-set changes ([`HistoryLog::copy_created`] with the
//!    creation snapshot — the paper's *backwards extension* — and
//!    [`HistoryLog::copy_deleted`]).
//!
//! At the end of the computation, [`HistoryLog::check`] evaluates the three
//! §3 requirements and returns every violation found.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How a copy observed an update action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObserveKind {
    /// The update was applied to the copy's value.
    Applied,
    /// The update arrived but its key had already left the copy's range
    /// (a relayed insert dropped after a split — legal because the split
    /// carried the key's fate).
    Discarded,
    /// The update arrived out of range and was re-issued toward its proper
    /// home (the semisync "rewrite history" move).
    Forwarded,
}

/// One violation of the §3 requirements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Complete-history violation: an issued update was never observed by
    /// any copy of any node.
    Lost {
        /// The lost update's tag.
        tag: u64,
        /// The class given at issue time.
        class: &'static str,
    },
    /// Compatible-history violation: a live copy's snapshot ∪ observations
    /// is missing updates from its node's initial-update set `M_n`.
    Incomplete {
        /// The logical node.
        node: u64,
        /// The processor holding the deficient copy.
        proc: u32,
        /// Tags in `M_n` the copy never saw.
        missing: Vec<u64>,
    },
    /// Compatible-history violation: live copies of a node finished with
    /// different values.
    Diverged {
        /// The logical node.
        node: u64,
        /// `(proc, digest)` of each live copy.
        digests: Vec<(u32, u64)>,
    },
    /// Ordered-history violation: an ordered-class action was applied after
    /// one that should follow it.
    OutOfOrder {
        /// The logical node.
        node: u64,
        /// The processor holding the copy.
        proc: u32,
        /// The ordered class.
        class: &'static str,
        /// Order key of the previously applied action.
        prev: u64,
        /// Order key of the action applied after it (≤ `prev`).
        next: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Lost { tag, class } => write!(f, "lost update #{tag} ({class})"),
            Violation::Incomplete {
                node,
                proc,
                missing,
            } => write!(
                f,
                "copy of node {node} at P{proc} missing {} update(s): {missing:?}",
                missing.len()
            ),
            Violation::Diverged { node, digests } => {
                write!(f, "copies of node {node} diverged: {digests:?}")
            }
            Violation::OutOfOrder {
                node,
                proc,
                class,
                prev,
                next,
            } => write!(
                f,
                "node {node} at P{proc}: {class} applied out of order ({next} after {prev})"
            ),
        }
    }
}

#[derive(Clone, Debug, Default)]
struct CopyRecord {
    snapshot: BTreeSet<u64>,
    observed: BTreeSet<u64>,
    last_ordered: BTreeMap<&'static str, u64>,
    live: bool,
    final_digest: Option<u64>,
    out_of_order: Vec<(&'static str, u64, u64)>,
    /// Applied updates in local application order: `(tag, initial_here)`.
    /// This is the copy's history `H_c` from §3.1, which the sequence
    /// oracle ([`crate::oracle`]) compares across copies for commutativity.
    applied_seq: Vec<(u64, bool)>,
    /// Ordered-class applications in local application order, violations
    /// included (the oracle re-derives monotonicity independently).
    ordered_seq: Vec<(&'static str, u64)>,
}

/// Summary counters, for experiment reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LogSummary {
    /// Updates issued.
    pub issued: u64,
    /// Observation events recorded.
    pub observations: u64,
    /// Observations that discarded the update.
    pub discards: u64,
    /// Observations that forwarded the update.
    pub forwards: u64,
    /// Live copies at check time.
    pub live_copies: u64,
}

/// The recorder. Construct with [`HistoryLog::new`] (recording) or
/// [`HistoryLog::disabled`] (all methods are cheap no-ops, for benchmarks).
#[derive(Clone, Debug)]
pub struct HistoryLog {
    enabled: bool,
    next_tag: u64,
    issued: BTreeMap<u64, &'static str>,
    observed_anywhere: BTreeSet<u64>,
    /// `M_n`: initial updates performed on each node.
    initial_sets: BTreeMap<u64, BTreeSet<u64>>,
    copies: BTreeMap<(u64, u32), CopyRecord>,
}

impl Default for HistoryLog {
    fn default() -> Self {
        Self::new()
    }
}

impl HistoryLog {
    /// A recording log.
    pub fn new() -> Self {
        HistoryLog {
            enabled: true,
            next_tag: 1,
            issued: BTreeMap::new(),
            observed_anywhere: BTreeSet::new(),
            initial_sets: BTreeMap::new(),
            copies: BTreeMap::new(),
        }
    }

    /// A log that records nothing and reports no violations.
    pub fn disabled() -> Self {
        HistoryLog {
            enabled: false,
            ..Self::new()
        }
    }

    /// Is this log recording?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The next tag [`HistoryLog::issue`] will mint — a watermark over
    /// issued actions, folded into state fingerprints so two schedules that
    /// issued different numbers of actions never collide.
    pub fn tag_watermark(&self) -> u64 {
        self.next_tag
    }

    /// Allocate a tag for a new initial update action of `class`.
    /// Tags are nonzero; 0 can be used by callers as "untracked".
    pub fn issue(&mut self, class: &'static str) -> u64 {
        if !self.enabled {
            return 0;
        }
        let tag = self.next_tag;
        self.next_tag += 1;
        self.issued.insert(tag, class);
        tag
    }

    /// Record that the copy of `node` on `proc` observed update `tag`.
    pub fn observe(&mut self, node: u64, proc: u32, tag: u64, kind: ObserveKind) {
        if !self.enabled || tag == 0 {
            return;
        }
        self.observed_anywhere.insert(tag);
        let rec = self.copy_entry(node, proc);
        if rec.observed.insert(tag) && kind == ObserveKind::Applied {
            rec.applied_seq.push((tag, false));
        }
    }

    /// Record that `tag` was consumed somewhere without a specific copy
    /// observing it (e.g. a routing-hint update dropped because its target
    /// node migrated away — hints are not part of any copy's value).
    /// Satisfies the complete-history requirement without creating a
    /// phantom copy record.
    pub fn observe_global(&mut self, tag: u64) {
        if !self.enabled || tag == 0 {
            return;
        }
        self.observed_anywhere.insert(tag);
    }

    /// Record that `tag` was performed as an *initial* action on `node` (at
    /// the copy on `proc`): it becomes a member of `M_node`, which every
    /// live copy must eventually cover.
    pub fn observe_initial(&mut self, node: u64, proc: u32, tag: u64) {
        if !self.enabled || tag == 0 {
            return;
        }
        self.initial_sets.entry(node).or_default().insert(tag);
        self.observed_anywhere.insert(tag);
        let rec = self.copy_entry(node, proc);
        if rec.observed.insert(tag) {
            rec.applied_seq.push((tag, true));
        } else if let Some(entry) = rec.applied_seq.iter_mut().rev().find(|e| e.0 == tag) {
            // Some protocols record the application first and flag it as
            // initial afterwards; upgrade in place.
            entry.1 = true;
        }
    }

    /// Record an applied ordered-class action (e.g. a link-change) with its
    /// position in the class's total order (the version number).
    pub fn ordered_applied(&mut self, node: u64, proc: u32, class: &'static str, order: u64) {
        if !self.enabled {
            return;
        }
        let rec = self.copy_entry(node, proc);
        rec.ordered_seq.push((class, order));
        if let Some(&prev) = rec.last_ordered.get(class) {
            if order <= prev {
                rec.out_of_order.push((class, prev, order));
                return;
            }
        }
        rec.last_ordered.insert(class, order);
    }

    /// Record creation of a copy of `node` on `proc`, whose initial value
    /// synthesizes the updates in `snapshot` (the backwards extension `B_c`).
    pub fn copy_created(&mut self, node: u64, proc: u32, snapshot: impl IntoIterator<Item = u64>) {
        if !self.enabled {
            return;
        }
        let rec = self.copy_entry(node, proc);
        rec.snapshot.extend(snapshot);
        rec.live = true;
    }

    /// The tags a copy has observed (snapshot ∪ observations) — used to seed
    /// the snapshot of a copy it spawns.
    pub fn copy_coverage(&self, node: u64, proc: u32) -> Vec<u64> {
        self.copies
            .get(&(node, proc))
            .map(|r| r.snapshot.union(&r.observed).copied().collect())
            .unwrap_or_default()
    }

    /// Record deletion of a copy (it is excluded from end-of-run checks, as
    /// the paper's unjoin semantics allow).
    pub fn copy_deleted(&mut self, node: u64, proc: u32) {
        if !self.enabled {
            return;
        }
        self.copy_entry(node, proc).live = false;
    }

    /// Record the copy's final value digest, compared across live copies.
    pub fn set_final_digest(&mut self, node: u64, proc: u32, digest: u64) {
        if !self.enabled {
            return;
        }
        self.copy_entry(node, proc).final_digest = Some(digest);
    }

    fn copy_entry(&mut self, node: u64, proc: u32) -> &mut CopyRecord {
        self.copies
            .entry((node, proc))
            .or_insert_with(|| CopyRecord {
                live: true,
                ..CopyRecord::default()
            })
    }

    /// Evaluate the complete, compatible, and ordered history requirements.
    /// Returns every violation (empty = the run satisfies all three).
    pub fn check(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        if !self.enabled {
            return out;
        }
        // Complete histories: every issued update observed somewhere.
        for (&tag, &class) in &self.issued {
            if !self.observed_anywhere.contains(&tag) {
                out.push(Violation::Lost { tag, class });
            }
        }
        // Compatible histories, part 1: coverage of M_n per live copy.
        for ((node, proc), rec) in &self.copies {
            if !rec.live {
                continue;
            }
            if let Some(mn) = self.initial_sets.get(node) {
                let missing: Vec<u64> = mn
                    .iter()
                    .filter(|t| !rec.observed.contains(t) && !rec.snapshot.contains(t))
                    .copied()
                    .collect();
                if !missing.is_empty() {
                    out.push(Violation::Incomplete {
                        node: *node,
                        proc: *proc,
                        missing,
                    });
                }
            }
            for &(class, prev, next) in &rec.out_of_order {
                out.push(Violation::OutOfOrder {
                    node: *node,
                    proc: *proc,
                    class,
                    prev,
                    next,
                });
            }
        }
        // Compatible histories, part 2: live copies converge in value.
        let mut nodes: BTreeMap<u64, Vec<(u32, u64)>> = BTreeMap::new();
        for ((node, proc), rec) in &self.copies {
            if rec.live {
                if let Some(d) = rec.final_digest {
                    nodes.entry(*node).or_default().push((*proc, d));
                }
            }
        }
        for (node, digests) in nodes {
            if digests.len() > 1 && digests.iter().any(|&(_, d)| d != digests[0].1) {
                out.push(Violation::Diverged { node, digests });
            }
        }
        out
    }

    /// The class `tag` was issued under, if it was issued by this log.
    pub fn class_of(&self, tag: u64) -> Option<&'static str> {
        self.issued.get(&tag).copied()
    }

    /// Every issued `(tag, class)` pair, in tag order.
    pub fn issued_actions(&self) -> impl Iterator<Item = (u64, &'static str)> + '_ {
        self.issued.iter().map(|(&t, &c)| (t, c))
    }

    /// Was `tag` observed by any copy (or globally consumed)?
    pub fn was_observed(&self, tag: u64) -> bool {
        self.observed_anywhere.contains(&tag)
    }

    /// Per-copy applied histories of *live* copies, grouped by node:
    /// `node → [(proc, applications)]` where each application is
    /// `(tag, initial_here)` in local application order — the copy history
    /// `H_c` of §3.1, as the sequence oracle consumes it.
    pub fn applied_sequences(&self) -> AppliedSequences<'_> {
        let mut out: AppliedSequences<'_> = BTreeMap::new();
        for ((node, proc), rec) in &self.copies {
            if rec.live {
                out.entry(*node)
                    .or_default()
                    .push((*proc, rec.applied_seq.as_slice()));
            }
        }
        out
    }

    /// Per-copy ordered-class application sequences of live copies:
    /// `(node, proc, [(class, order)])` in local application order.
    pub fn ordered_sequences(&self) -> Vec<OrderedSequence<'_>> {
        self.copies
            .iter()
            .filter(|(_, rec)| rec.live)
            .map(|((node, proc), rec)| (*node, *proc, rec.ordered_seq.as_slice()))
            .collect()
    }

    /// Counters for reports.
    pub fn summary(&self) -> LogSummary {
        LogSummary {
            issued: self.issued.len() as u64,
            observations: self.copies.values().map(|r| r.observed.len() as u64).sum(),
            discards: 0,
            forwards: 0,
            live_copies: self.copies.values().filter(|r| r.live).count() as u64,
        }
    }
}

/// Live copy histories grouped by node: `node → [(proc, [(tag,
/// initial_here)])]`, each copy's applications in local order.
pub type AppliedSequences<'a> = BTreeMap<u64, Vec<(u32, &'a [(u64, bool)])>>;

/// One live copy's ordered-class application sequence:
/// `(node, proc, [(class, order)])`.
pub type OrderedSequence<'a> = (u64, u32, &'a [(&'static str, u64)]);

/// FNV-1a over little-endian words — a tiny stable digest helper for final
/// copy values (no external hash dependencies).
pub fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_has_no_violations() {
        let mut log = HistoryLog::new();
        let t1 = log.issue("insert");
        let t2 = log.issue("insert");
        for proc in 0..3 {
            log.copy_created(7, proc, []);
            log.observe(7, proc, t1, ObserveKind::Applied);
            log.observe(7, proc, t2, ObserveKind::Applied);
            log.set_final_digest(7, proc, 42);
        }
        log.observe_initial(7, 0, t1);
        log.observe_initial(7, 1, t2);
        assert!(log.check().is_empty());
    }

    #[test]
    fn lost_update_detected() {
        let mut log = HistoryLog::new();
        let t = log.issue("insert");
        let violations = log.check();
        assert_eq!(
            violations,
            vec![Violation::Lost {
                tag: t,
                class: "insert"
            }]
        );
    }

    #[test]
    fn incomplete_copy_detected() {
        let mut log = HistoryLog::new();
        let t = log.issue("insert");
        log.copy_created(7, 0, []);
        log.copy_created(7, 1, []);
        log.observe_initial(7, 0, t);
        // copy on P1 never sees t.
        let violations = log.check();
        assert!(violations.iter().any(|v| matches!(
            v,
            Violation::Incomplete {
                node: 7,
                proc: 1,
                ..
            }
        )));
    }

    #[test]
    fn snapshot_covers_earlier_updates() {
        let mut log = HistoryLog::new();
        let t = log.issue("insert");
        log.copy_created(7, 0, []);
        log.observe_initial(7, 0, t);
        // New copy joins later; its snapshot covers t (backwards extension).
        let coverage = log.copy_coverage(7, 0);
        log.copy_created(7, 1, coverage);
        assert!(log.check().is_empty());
    }

    #[test]
    fn divergence_detected() {
        let mut log = HistoryLog::new();
        log.copy_created(3, 0, []);
        log.copy_created(3, 1, []);
        log.set_final_digest(3, 0, 1);
        log.set_final_digest(3, 1, 2);
        let violations = log.check();
        assert!(matches!(
            violations.as_slice(),
            [Violation::Diverged { node: 3, .. }]
        ));
    }

    #[test]
    fn dead_copies_exempt() {
        let mut log = HistoryLog::new();
        let t = log.issue("insert");
        log.copy_created(7, 0, []);
        log.copy_created(7, 1, []);
        log.observe_initial(7, 0, t);
        log.set_final_digest(7, 0, 5);
        log.set_final_digest(7, 1, 99); // diverged AND incomplete...
        log.copy_deleted(7, 1); // ...but unjoined, so exempt
        assert!(log.check().is_empty());
    }

    #[test]
    fn ordered_violation_detected() {
        let mut log = HistoryLog::new();
        log.copy_created(1, 0, []);
        log.ordered_applied(1, 0, "link-change", 3);
        log.ordered_applied(1, 0, "link-change", 2);
        let violations = log.check();
        assert!(matches!(
            violations.as_slice(),
            [Violation::OutOfOrder {
                class: "link-change",
                prev: 3,
                next: 2,
                ..
            }]
        ));
    }

    #[test]
    fn ordered_monotone_is_clean() {
        let mut log = HistoryLog::new();
        log.copy_created(1, 0, []);
        for v in 1..10 {
            log.ordered_applied(1, 0, "link-change", v);
        }
        assert!(log.check().is_empty());
    }

    #[test]
    fn disabled_log_is_inert() {
        let mut log = HistoryLog::disabled();
        assert_eq!(log.issue("insert"), 0);
        log.copy_created(1, 0, []);
        log.set_final_digest(1, 0, 1);
        assert!(log.check().is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn fnv_is_order_sensitive_and_stable() {
        assert_eq!(fnv1a([1, 2, 3]), fnv1a([1, 2, 3]));
        assert_ne!(fnv1a([1, 2, 3]), fnv1a([3, 2, 1]));
        assert_ne!(fnv1a([]), fnv1a([0]));
    }
}
