//! Property-based tests of the §3 theory: the commutativity classification
//! of §4.1, checked over arbitrary action interleavings of the formal model.

use std::collections::BTreeSet;

use history::model::{Action, History, NodeValue};
use history::taxonomy::{check_pair, derive_table, PairVerdict, Shape};
use proptest::prelude::*;

fn base_value(keys: &[u64]) -> NodeValue {
    let mut v = NodeValue::new(0, None);
    v.keys.extend(keys.iter().copied());
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// §4.1 rule 1: any two insert actions on a copy commute — swapping
    /// adjacent inserts never changes the final value.
    #[test]
    fn inserts_commute(
        base in proptest::collection::vec(0u64..100, 0..10),
        k1 in 0u64..100,
        k2 in 0u64..100,
        i1 in any::<bool>(),
        i2 in any::<bool>(),
    ) {
        let v = base_value(&base);
        let a = Action::Insert { tag: 1, key: k1, initial: i1 };
        let b = Action::Insert { tag: 2, key: k2, initial: i2 };
        let mut h1 = History::new(v.clone());
        h1.push(a);
        h1.push(b);
        let mut h2 = History::new(v);
        h2.push(b);
        h2.push(a);
        prop_assert_eq!(h1.compatible(&h2), Ok(()));
    }

    /// §4.1 rule 3: a relayed half-split commutes with a *relayed* insert
    /// (the relayed insert has no subsequent actions, so only the final
    /// value matters, and it is order-independent).
    #[test]
    fn relayed_split_commutes_with_relayed_insert(
        base in proptest::collection::vec(0u64..100, 0..10),
        key in 0u64..100,
        at in 1u64..100,
    ) {
        let v = base_value(&base);
        let ins = Action::Insert { tag: 1, key, initial: false };
        let split = Action::HalfSplit { tag: 2, at, sib: 9, initial: false };
        let mut h1 = History::new(v.clone());
        h1.push(ins);
        h1.push(split);
        let mut h2 = History::new(v);
        h2.push(split);
        h2.push(ins);
        let (v1, _) = h1.final_value();
        let (v2, _) = h2.final_value();
        prop_assert_eq!(v1, v2);
    }

    /// §4.1 rule 2: two half-splits do NOT commute whenever their sibling
    /// names differ and both cut the node (the right pointer depends on
    /// order).
    #[test]
    fn half_splits_conflict(
        base in proptest::collection::vec(0u64..100, 0..10),
        at1 in 1u64..100,
        at2 in 1u64..100,
    ) {
        prop_assume!(at1 != at2);
        let v = base_value(&base);
        let s1 = Action::HalfSplit { tag: 1, at: at1, sib: 11, initial: true };
        let s2 = Action::HalfSplit { tag: 2, at: at2, sib: 22, initial: false };
        let mut h1 = History::new(v.clone());
        h1.push(s1);
        h1.push(s2);
        let mut h2 = History::new(v);
        h2.push(s2);
        h2.push(s1);
        let (v1, _) = h1.final_value();
        let (v2, _) = h2.final_value();
        // The final `right` pointer always reflects the last split applied.
        prop_assert_ne!(v1.right, v2.right);
        // And the ranges differ unless one split's point was already outside
        // the other's remaining range.
        prop_assert_eq!(v1.high, Some(at1.min(at2)));
        prop_assert_eq!(v2.high, Some(at1.min(at2)));
    }

    /// Backwards extension (§3.1) never changes the final value or the
    /// suffix of subsequent actions.
    #[test]
    fn backwards_extension_preserves_value(
        prefix_keys in proptest::collection::vec(0u64..100, 0..10),
        suffix_keys in proptest::collection::vec(0u64..100, 0..10),
    ) {
        let mut prefix = History::new(NodeValue::new(0, None));
        for (i, &k) in prefix_keys.iter().enumerate() {
            prefix.push(Action::Insert { tag: i as u64 + 1, key: k, initial: true });
        }
        let (mid, _) = prefix.final_value();
        let mut h = History::new(mid);
        for (i, &k) in suffix_keys.iter().enumerate() {
            h.push(Action::Insert { tag: 1000 + i as u64, key: k, initial: true });
        }
        let ext = h.backwards_extend(&prefix);
        prop_assert_eq!(ext.final_value().0, h.final_value().0);
        prop_assert_eq!(ext.uniform().len(), prefix_keys.len() + suffix_keys.len());
    }

    /// The taxonomy's classification of a random small history matches a
    /// brute-force enumeration of its permutations: every order reachable
    /// from the original by swapping adjacent pairs that [`check_pair`]
    /// classifies as commuting *on the actual intermediate state* must
    /// produce the identical observable outcome — final node value plus
    /// the routed-right/moved-to-sibling subsequent-action sets — computed
    /// from scratch per permutation, with no taxonomy involved. This is
    /// exactly the soundness the sequence oracle leans on: "compatible"
    /// histories (commuting reorders only) are observation-equivalent.
    #[test]
    fn commuting_reorders_are_observation_equivalent(
        base in proptest::collection::vec(1u64..8, 0..4),
        raw in proptest::collection::vec((0u8..8, 1u64..8), 1..6),
    ) {
        let mut v = NodeValue::new(0, None);
        v.keys.extend(base.iter().copied());
        let actions: Vec<Action> = raw
            .iter()
            .enumerate()
            .map(|(i, &(shape, param))| {
                Shape::ALL[shape as usize].instantiate(i as u64 + 1, param, 100 + i as u64)
            })
            .collect();

        let outcome = |order: &[usize]| {
            let mut h = History::new(v.clone());
            for &i in order {
                h.push(actions[i]);
            }
            let (fv, fx) = h.final_value();
            // `discarded` is excluded, as in the taxonomy: a discard has no
            // subsequent action.
            (fv, fx.routed_right, fx.moved_to_sibling)
        };

        // Brute-force BFS over permutations, one commuting adjacent swap at
        // a time (≤5 actions → ≤120 orders, trivially exhaustible).
        let identity: Vec<usize> = (0..actions.len()).collect();
        let reference = outcome(&identity);
        let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
        let mut frontier = vec![identity];
        seen.insert(frontier[0].clone());
        while let Some(order) = frontier.pop() {
            for i in 0..order.len().saturating_sub(1) {
                // State just before the pair, under this order.
                let mut state = v.clone();
                for &j in &order[..i] {
                    state = actions[j].apply(&state).0;
                }
                let verdict = check_pair(actions[order[i]], actions[order[i + 1]], &state);
                if verdict != PairVerdict::Commutes {
                    continue;
                }
                let mut next = order.clone();
                next.swap(i, i + 1);
                if seen.insert(next.clone()) {
                    prop_assert_eq!(
                        &outcome(&next),
                        &reference,
                        "reorder via a commuting swap changed the observable outcome"
                    );
                    frontier.push(next);
                }
            }
        }
    }

    /// PR 8 merge-family rule: a relayed retire commutes with a relayed
    /// insert on every state — retirement rides the lazy relay stream like
    /// any other leaf write.
    #[test]
    fn relayed_retire_commutes_with_relayed_insert(
        base in proptest::collection::vec(0u64..100, 0..10),
        key in 0u64..100,
        fwd in 100u64..200,
    ) {
        let v = base_value(&base);
        let ins = Action::Insert { tag: 1, key, initial: false };
        let ret = Action::Retire { tag: 2, fwd, initial: false };
        prop_assert_eq!(check_pair(ins, ret, &v), PairVerdict::Commutes);
        prop_assert_eq!(check_pair(ret, ins, &v), PairVerdict::Commutes);
        let mut h1 = History::new(v.clone());
        h1.push(ins);
        h1.push(ret);
        let mut h2 = History::new(v);
        h2.push(ret);
        h2.push(ins);
        prop_assert_eq!(h1.final_value().0, h2.final_value().0);
    }

    /// PR 8 merge-family rule: absorbs commute with inserts in every
    /// initial/relayed combination — an absorb only widens the range, so no
    /// insert's routing decision changes.
    #[test]
    fn absorbs_commute_with_inserts(
        base in proptest::collection::vec(0u64..100, 0..10),
        key in 0u64..100,
        to in 1u64..100,
        right in 100u64..200,
        ins_initial in any::<bool>(),
        abs_initial in any::<bool>(),
    ) {
        let v = base_value(&base);
        let ins = Action::Insert { tag: 1, key, initial: ins_initial };
        let abs = Action::Absorb { tag: 2, to, right, initial: abs_initial };
        prop_assert_eq!(check_pair(ins, abs, &v), PairVerdict::Commutes);
        prop_assert_eq!(check_pair(abs, ins, &v), PairVerdict::Commutes);
        let mut h1 = History::new(v.clone());
        h1.push(ins);
        h1.push(abs);
        let mut h2 = History::new(v);
        h2.push(abs);
        h2.push(ins);
        prop_assert_eq!(h1.final_value().0, h2.final_value().0);
    }

    /// PR 8 merge-family rule: structural actions — splits, retires,
    /// absorbs — conflict pairwise on at least one state, which is why the
    /// exported [`shapes_commute`] relation (the DPOR independence oracle)
    /// marks every structural pair dependent. Here the *shape-level*
    /// verdict is checked: a randomly instantiated structural pair must
    /// never be treated as independent by the cached table.
    #[test]
    fn structural_merge_pairs_are_dependent(
        sa in 2u8..8,
        sb in 2u8..8,
    ) {
        let a = Shape::ALL[sa as usize];
        let b = Shape::ALL[sb as usize];
        prop_assert!(
            !history::shapes_commute(a, b),
            "{}/{} classified independent",
            a.label(),
            b.label()
        );
    }

    /// Soundness of the cached [`shapes_commute`] relation against the raw
    /// pair check: whenever the table says a shape pair commutes, no
    /// randomly instantiated state/parameter choice may produce a
    /// conflicting verdict. (The other direction — a conflicting pair has
    /// *some* witness — is covered exhaustively by
    /// `derived_table_matches_direct_permutation_check`.)
    #[test]
    fn shapes_commute_is_sound_for_random_instances(
        base in proptest::collection::vec(1u64..5, 0..5),
        sa in 0u8..8,
        sb in 0u8..8,
        pa in 1u64..5,
        pb in 1u64..5,
    ) {
        let a = Shape::ALL[sa as usize];
        let b = Shape::ALL[sb as usize];
        if history::shapes_commute(a, b) {
            let v = base_value(&base);
            let ia = a.instantiate(1, pa, 100);
            let ib = b.instantiate(2, pb, 200);
            prop_assert_eq!(check_pair(ia, ib, &v), PairVerdict::Commutes);
        }
    }

    /// Uniform histories erase the initial/relayed distinction, nothing
    /// else.
    #[test]
    fn uniform_is_flag_blind(
        keys in proptest::collection::vec(0u64..100, 1..20),
        flags in proptest::collection::vec(any::<bool>(), 1..20),
    ) {
        let mut h1 = History::new(NodeValue::new(0, None));
        let mut h2 = History::new(NodeValue::new(0, None));
        for (i, &k) in keys.iter().enumerate() {
            let f = flags.get(i).copied().unwrap_or(false);
            h1.push(Action::Insert { tag: i as u64, key: k, initial: f });
            h2.push(Action::Insert { tag: i as u64, key: k, initial: !f });
        }
        prop_assert_eq!(h1.uniform(), h2.uniform());
    }
}

/// The derived §4.1 table agrees with a brute-force check that never calls
/// the taxonomy: for each ordered shape pair, enumerate every state over a
/// small key universe and every parameter choice, build the two-action
/// history in both permutations via [`History`], and compare the outcomes
/// (final value + routed/moved effect sets) directly. The pair commutes
/// iff every instance agrees — which must be exactly what
/// [`derive_table`] says.
#[test]
fn derived_table_matches_direct_permutation_check() {
    const MAX_KEY: u64 = 3;
    let universe: Vec<u64> = (1..=MAX_KEY).collect();
    let mut states = Vec::new();
    for mask in 0..(1u32 << universe.len()) {
        let mut v = NodeValue::new(0, None);
        for (i, &k) in universe.iter().enumerate() {
            if mask >> i & 1 == 1 {
                v.keys.insert(k);
            }
        }
        states.push(v);
    }

    let outcome = |first: Action, second: Action, state: &NodeValue| {
        let mut h = History::new(state.clone());
        h.push(first);
        h.push(second);
        let (fv, fx) = h.final_value();
        (fv, fx.routed_right, fx.moved_to_sibling)
    };

    let table = derive_table(MAX_KEY);
    for &(sa, sb, table_commutes) in &table {
        let mut brute_commutes = true;
        'pairs: for &pa in &universe {
            for &pb in &universe {
                let a = sa.instantiate(1, pa, 100);
                let b = sb.instantiate(2, pb, 200);
                for s in &states {
                    if outcome(a, b, s) != outcome(b, a, s) {
                        brute_commutes = false;
                        break 'pairs;
                    }
                }
            }
        }
        assert_eq!(
            table_commutes,
            brute_commutes,
            "{}/{}: taxonomy and brute force disagree",
            sa.label(),
            sb.label()
        );
    }
}
