//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the thin slice of `rand` it actually uses: `SmallRng` (implemented, as in
//! rand 0.8 on 64-bit targets, as xoshiro256++ seeded through SplitMix64),
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods
//! `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is a faithful xoshiro256++ — not a toy LCG — so the
//! statistical assertions in `workload` (Zipf skew, mix ratios, uniformity)
//! hold just as they would with the upstream crate.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit output (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Build from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64 (as rand 0.8 does).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator ("standard"
/// distribution in upstream terms).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (upstream's scheme).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Lemire multiply-shift; bias is < 2^-64 per draw, far below
                // anything the statistical tests can resolve.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128) - (start as u128) + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                start + hi
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )*};
}
impl_signed_range!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64, used to expand small seeds (same constants as upstream).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind rand 0.8's 64-bit `SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point; nudge it (upstream rejects it
            // the same way via seeding through SplitMix64).
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_and_mean() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sum = 0u64;
        const N: u64 = 100_000;
        for _ in 0..N {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            sum += v;
        }
        let mean = sum as f64 / N as f64;
        assert!((mean - 14.5).abs() < 0.05, "mean {mean} off for 10..20");
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..=5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_ratio() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let ratio = hits as f64 / 100_000.0;
        assert!((ratio - 0.25).abs() < 0.01, "gen_bool(0.25) ratio {ratio}");
    }
}
