//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the slice of proptest its test suites use: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map`, ranges and tuples as strategies,
//! [`strategy::Just`], [`prop_oneof!`], [`collection::vec`],
//! [`arbitrary::any`], and the `prop_assert*`/`prop_assume!` macros.
//!
//! Semantics: cases are generated from a deterministic per-test seed (the
//! FNV-1a hash of the test name), so failures reproduce run-to-run. There is
//! **no shrinking** — a failing case reports the assertion message and the
//! case number; `max_shrink_iters` is accepted and ignored.

pub mod test_runner {
    //! Config, error type, and RNG for generated test cases.

    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Subset of proptest's run configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required per test.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Why a generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed — the test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs — the case is retried.
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Build a rejection.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    /// The RNG handed to strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// Seed deterministically from the test's name.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(SmallRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase for heterogeneous composition (`prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        /// Build from at least one alternative.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union(options)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_range(0..self.0.len());
            self.0[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_signed_range_strategy!(i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident),+)),+ $(,)?) => {$(
            #[allow(non_snake_case)]
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
}

pub mod arbitrary {
    //! `any::<T>()` — canonical strategies per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{Rng, RngCore};

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as u16
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u32()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as usize
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "collection::vec: empty size range");
        VecStrategy { element, size }
    }
}

pub mod prelude {
    //! Everything the test files import with `use proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declare property tests. Matches proptest's surface syntax; runs
/// `config.cases` deterministic cases per test, no shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            let mut case: u32 = 0;
            let mut rejects: u32 = 0;
            while case < config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body;
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => case += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejects += 1;
                        assert!(
                            rejects < config.cases.saturating_mul(16).max(1024),
                            "proptest {}: too many prop_assume! rejections",
                            stringify!($name),
                        );
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name), case, msg,
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Assert inside a proptest body; failure fails the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b,
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($a), stringify!($b), a, b, format!($($fmt)+),
        );
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), a,
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}\n{}",
            stringify!($a), stringify!($b), a, format!($($fmt)+),
        );
    }};
}

/// Discard the current case (retried with fresh inputs, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 0usize..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_and_tuple_strategies(
            pairs in crate::collection::vec((0u64..100, 0u32..10), 1..50),
            flag in any::<bool>(),
        ) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 50);
            for &(a, b) in &pairs {
                prop_assert!(a < 100 && b < 10);
            }
            prop_assert!(usize::from(flag) <= 1);
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![Just(1u64), (10u64..20).prop_map(|x| x * 2)],
        ) {
            prop_assert!(v == 1 || (20..40).contains(&v), "got {}", v);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1000, 5..10);
        let mut r1 = crate::test_runner::TestRng::deterministic("probe");
        let mut r2 = crate::test_runner::TestRng::deterministic("probe");
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }
}
