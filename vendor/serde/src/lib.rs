//! Offline serde facade.
//!
//! Re-exports the no-op derive macros and declares empty marker traits so
//! `#[derive(serde::Serialize, serde::Deserialize)]` and
//! `use serde::{Serialize, Deserialize}` compile without the real crate.
//! Nothing in this workspace performs serialization (the environment is
//! offline and serde_json is deliberately absent), so the traits carry no
//! methods.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
