//! Offline drop-in subset of `parking_lot`, backed by `std::sync`.
//!
//! Only the pieces the workspace uses: `Mutex`/`RwLock` with non-poisoning
//! `lock`/`read`/`write` (parking_lot's locks do not poison, so on a
//! poisoned std lock we take the inner guard — identical observable
//! behaviour for these single-process uses).

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (never poisons).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
