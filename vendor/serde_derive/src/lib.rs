//! No-op `Serialize`/`Deserialize` derives.
//!
//! The workspace annotates value types with serde derives for downstream
//! consumers, but nothing in-tree serializes (no serde_json etc. in the
//! dependency set — the build environment is offline). These derives accept
//! the attribute position and emit nothing, which keeps the annotations
//! compiling without pulling in the real serde machinery.

use proc_macro::TokenStream;

/// Accept `#[derive(Serialize)]` and emit nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept `#[derive(Deserialize)]` and emit nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
