//! Offline drop-in subset of the `criterion` API.
//!
//! Benchmarks compile and run against this facade without crates.io access.
//! It is a real (if minimal) harness: each benchmark is warmed up, then
//! sampled `sample_size` times, and mean/min wall-clock per iteration is
//! printed. There are no plots, baselines, or statistical regressions.
//!
//! Under `cargo test` the bench binaries are executed too (criterion's
//! "test mode"); we detect the libtest `--test` flag — or any libtest-style
//! argument — and then run every closure exactly once, keeping `cargo test`
//! fast while still exercising the bench code path.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// The measurement driver handed to bench closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    iters_per_sample: u64,
    test_mode: bool,
}

impl Bencher<'_> {
    /// Measure `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    group_name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher<'_>, &I),
    {
        let label = format!("{}/{}", self.group_name, id);
        self.run(&label, |b| f(b, input));
        self
    }

    /// Benchmark `f`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.group_name, id);
        self.run(&label, f);
        self
    }

    fn run<F: FnOnce(&mut Bencher<'_>)>(&mut self, label: &str, f: F) {
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut b = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            iters_per_sample: 1,
            test_mode: self.criterion.test_mode,
        };
        f(&mut b);
        if self.criterion.test_mode {
            println!("test-mode: {label} ran once, ok");
            return;
        }
        report(label, &samples);
    }

    /// End the group (report boundary; all output is already printed).
    pub fn finish(&mut self) {}
}

/// The top-level harness handle.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test`, bench targets with `harness = false` are run
        // with libtest-style flags; `cargo bench` passes `--bench`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            group_name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher<'_>),
    {
        let mut g = BenchmarkGroup {
            criterion: self,
            group_name: "bench".into(),
            sample_size: 10,
        };
        g.bench_function(name, f);
        self
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<44} no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    println!(
        "{label:<44} mean {:>12?}   min {:>12?}   ({} samples)",
        mean,
        min,
        samples.len()
    );
}

/// Bundle bench functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("insert", 100).to_string(), "insert/100");
        assert_eq!(
            BenchmarkId::from_parameter("semisync").to_string(),
            "semisync"
        );
    }

    #[test]
    fn groups_run_closures() {
        let mut c = Criterion { test_mode: true };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("one", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert_eq!(ran, 1);
    }
}
