//! Offline drop-in subset of `crossbeam`, backed by `std::sync::mpsc`.
//!
//! The workspace uses crossbeam only for MPMC-ish channel plumbing in the
//! threaded simnet runtime. `std::sync::mpsc` channels are MPSC, which is
//! exactly the topology simnet builds (many senders, one receiving thread
//! per processor), so a thin wrapper suffices. `Receiver` here is `Send`
//! (moved into its owning thread) but, unlike real crossbeam, not `Sync` /
//! cloneable — simnet does not share receivers.

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of a channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a message; `Err` if the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block for the next message; `Err` when all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Block for at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Iterate until all senders disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;
    use std::time::Duration;

    #[test]
    fn fifo_per_sender() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn multi_producer() {
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(t).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got: Vec<i32> = (0..4).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn timeout_fires() {
        let (tx, rx) = unbounded::<()>();
        assert!(rx.recv_timeout(Duration::from_millis(5)).is_err());
        drop(tx);
    }
}
