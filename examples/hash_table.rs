//! Lazy updates beyond the B-tree: the distributed extendible hash table
//! (the paper's §5 generalization, implemented in the `dhash` crate).
//!
//! Builds an 8-processor table, blasts concurrent inserts so bucket splits
//! and directory patches race the traffic, and shows the lazy machinery at
//! work: every operation lands despite stale directory copies, recovered
//! through bucket split-image links.
//!
//! ```sh
//! cargo run -p dhash --example hash_table
//! ```

use std::collections::BTreeMap;

use dhash::{check_hash_cluster, DirProtocol, HKind, HashCluster, HashConfig, HashSpec};
use simnet::{ProcId, SimConfig};

fn main() {
    let spec = HashSpec {
        preload: (0..200).map(|k| k * 5).collect(),
        n_procs: 8,
        cfg: HashConfig {
            capacity: 8,
            protocol: DirProtocol::Lazy,
            spread_images: true,
            record_history: true,
        },
    };
    let mut cluster = HashCluster::build(&spec, SimConfig::jittery(11, 2, 30));
    println!("built a distributed extendible hash table on 8 processors");

    // One concurrent burst: everything races everything.
    let mut expected: BTreeMap<u64, u64> = (0..200).map(|k| (k * 5, k * 5)).collect();
    let n = 2_000u64;
    for i in 0..n {
        let key = 10_000 + i;
        cluster.submit(ProcId((i % 8) as u32), key, HKind::Insert(key * 2));
        expected.insert(key, key * 2);
    }
    let stats = cluster.run_to_quiescence();
    println!(
        "{} inserts completed; {} misnavigations recovered via split-image links; {} lost",
        stats.records.len(),
        stats.recoveries(),
        stats.lost()
    );

    let splits: u64 = cluster.sim.procs().map(|(_, p)| p.metrics.splits).sum();
    let (depth, buckets) = {
        let p0 = cluster.sim.proc(ProcId(0));
        let total: usize = cluster.sim.procs().map(|(_, p)| p.buckets.len()).sum();
        (p0.dir.global_depth(), total)
    };
    println!("{splits} bucket splits grew the directory to depth {depth} ({buckets} buckets)");

    // Search a few keys from every processor.
    for p in 0..8u32 {
        cluster.submit(ProcId(p), 10_000 + p as u64 * 7, HKind::Search);
    }
    let stats = cluster.run_to_quiescence();
    assert!(stats.records.iter().all(|r| r.outcome.found.is_some()));
    println!("spot searches from all 8 processors hit");

    let violations = check_hash_cluster(&mut cluster, &expected);
    println!(
        "checker: {} violations — directories converged, all keys findable, §3 requirements hold",
        violations.len()
    );
    assert!(violations.is_empty());
}
