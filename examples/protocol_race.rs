//! Watch the Fig 3/Fig 4 races happen, message by message.
//!
//! Builds the smallest interesting dB-tree (two processors, every node on
//! both, two nearly-full leaves under one replicated parent), triggers
//! simultaneous splits, and prints the delivery trace at each parent copy —
//! showing the *same* updates applied in *different orders*, converging
//! under semisync and losing a key under the naive protocol.
//!
//! ```sh
//! cargo run -p dbtree --example protocol_race
//! ```

use dbtree::{checker, BuildSpec, ClientOp, DbCluster, Intent, ProtocolKind, TreeConfig};
use simnet::{ProcId, SimConfig};
use std::collections::BTreeSet;

fn run(protocol: ProtocolKind, seed: u64) {
    println!("--- protocol = {} (seed {seed}) ---", protocol.label());
    let cfg = TreeConfig {
        fanout: 4,
        ..TreeConfig::fixed_copies(protocol, 2)
    };
    let spec = BuildSpec {
        keys: vec![10, 20, 30, 40, 110, 120, 130, 140],
        n_procs: 2,
        cfg,
        fill: 4,
    };
    let mut sim_cfg = SimConfig::jittery(seed, 2, 30);
    sim_cfg.trace_capacity = 200;
    let mut cluster = DbCluster::build(&spec, sim_cfg);

    // Two inserts, one per leaf, submitted simultaneously from different
    // processors: both leaves split "at about the same time" (Fig 3).
    cluster.submit(ClientOp {
        origin: ProcId(0),
        key: 15,
        intent: Intent::Insert(15),
    });
    cluster.submit(ClientOp {
        origin: ProcId(1),
        key: 115,
        intent: Intent::Insert(115),
    });
    cluster.run_to_quiescence();

    println!("update deliveries, in order:");
    for e in cluster.sim.trace().iter() {
        if e.kind.starts_with("insert.") || e.kind.starts_with("split.") {
            println!(
                "  t{:<4} {} -> {}  {:<18} span={:?}",
                e.at.ticks(),
                e.from,
                e.to,
                e.kind,
                e.span
            );
        }
    }

    let expected: BTreeSet<u64> = [10, 20, 30, 40, 110, 120, 130, 140, 15, 115]
        .into_iter()
        .collect();
    cluster.record_final_digests();
    let diverged = checker::check_convergence(&cluster.sim).len();
    let lost: Vec<u64> = checker::check_keys(&cluster.sim, &expected)
        .iter()
        .filter_map(|v| match v {
            dbtree::TreeViolation::KeyLost { key } => Some(*key),
            _ => None,
        })
        .collect();
    println!("result: {diverged} diverged nodes, lost keys: {lost:?}\n");
}

fn main() {
    println!("Fig 3: concurrent splits complete at different copies of the parent;");
    println!("lazy inserts commute, so the copies converge without synchronization.\n");
    run(ProtocolKind::SemiSync, 7);

    println!("Fig 4: the naive protocol drops out-of-range relays at the PC.");
    println!("Under the right interleaving an acknowledged insert vanishes:\n");
    // Sweep seeds until the race window is hit (deterministic per seed).
    for seed in 0..50 {
        let cfg = TreeConfig {
            fanout: 4,
            ..TreeConfig::fixed_copies(ProtocolKind::Naive, 2)
        };
        let spec = BuildSpec {
            keys: vec![10, 20, 30, 40],
            n_procs: 2,
            cfg,
            fill: 4,
        };
        let mut cluster = DbCluster::build(&spec, SimConfig::jittery(seed, 2, 60));
        // Insert at the non-PC copy while the PC is splitting.
        for k in [15u64, 25, 35, 5, 17, 27] {
            cluster.submit(ClientOp {
                origin: ProcId(1),
                key: k,
                intent: Intent::Insert(k),
            });
        }
        cluster.run_to_quiescence();
        let expected: BTreeSet<u64> = [10, 20, 30, 40, 15, 25, 35, 5, 17, 27]
            .into_iter()
            .collect();
        let lost: Vec<u64> = checker::check_keys(&cluster.sim, &expected)
            .iter()
            .filter_map(|v| match v {
                dbtree::TreeViolation::KeyLost { key } => Some(*key),
                _ => None,
            })
            .collect();
        if !lost.is_empty() {
            println!("seed {seed}: keys {lost:?} were acknowledged and then lost (Fig 4)");
            println!("the same seed under semisync:");
            run(ProtocolKind::SemiSync, seed);
            return;
        }
    }
    println!("(no loss within 50 seeds — rerun with a wider jitter window)");
}
