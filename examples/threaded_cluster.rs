//! The same dB-tree processors on real OS threads.
//!
//! The protocol code is runtime-agnostic: `DbProc` implements
//! `simnet::Process`, so the exact same state machines that run under the
//! deterministic simulator also run on `simnet::threaded::Cluster`, where
//! each processor is a thread and channels are crossbeam queues. Both
//! runtimes implement `simnet::Runtime`, so the same `DbCluster` facade and
//! workload driver run here too — this example bulk-builds a tree, spawns
//! the threaded cluster, and drives a closed-loop mixed workload through
//! exactly the code path the simulator experiments use.
//!
//! Timers work on threads as well (a dedicated timer thread delivers them
//! at wall-clock deadlines), so relay piggybacking — which relies on a
//! flush-interval timer to bound staleness — is exercised here with a batch
//! size the workload never fills, forcing every flush through the timer.
//!
//! ```sh
//! cargo run -p dbtree --example threaded_cluster
//! ```

use std::time::Instant;

use dbtree::{
    record_final_digests_from, BuildSpec, ClientOp, Intent, PiggybackCfg, ProcMetrics,
    ThreadedDbCluster, TreeConfig,
};
use simnet::ProcId;

fn main() {
    let n_procs = 4u32;
    let cfg = TreeConfig {
        // Unfillable batch: every flush must come from the timer. On the
        // threaded runtime a tick is a microsecond, so this flushes relay
        // buffers at most 200µs after the first buffered relay.
        piggyback: Some(PiggybackCfg {
            max_batch: 100_000,
            flush_interval: 200,
        }),
        ..Default::default()
    };
    let spec = BuildSpec::new((0..2_000u64).map(|k| k * 3).collect(), n_procs, cfg);

    println!("spawning {n_procs} dB-tree processors as OS threads...");
    let mut cluster = ThreadedDbCluster::build_threaded(&spec);

    let total_ops = 4_000u64;
    let ops: Vec<ClientOp> = (0..total_ops)
        .map(|i| {
            let origin = ProcId((i % n_procs as u64) as u32);
            if i % 4 == 0 {
                ClientOp {
                    origin,
                    key: 6001 + i, // fresh keys: grows the right edge
                    intent: Intent::Insert(i),
                }
            } else {
                ClientOp {
                    origin,
                    key: (i * 3) % 6000,
                    intent: Intent::Search,
                }
            }
        })
        .collect();

    let t0 = Instant::now();
    let stats = cluster.run_closed_loop(&ops, 8);
    let elapsed = t0.elapsed();

    let done = stats.records.len();
    let found = stats
        .records
        .iter()
        .filter(|r| r.outcome.found.is_some())
        .count();
    assert_eq!(done as u64, total_ops, "closed loop lost operations");
    println!(
        "{done} operations completed in {elapsed:?} ({:.0} ops/s); {found} lookups hit; \
         mean latency {:.0}µs, p99 {}µs",
        done as f64 / elapsed.as_secs_f64(),
        stats.mean_latency(),
        stats.latency_quantile(0.99),
    );

    // Tear down: join every worker thread and take back the final processor
    // states. The driver already settled the cluster (probe barrier), so no
    // grace-period sleep is needed — quiescence is detected, not guessed.
    let log = cluster.log();
    let procs = cluster.into_procs();

    let mut metrics = ProcMetrics::default();
    for p in &procs {
        metrics.merge(&p.metrics);
    }
    println!(
        "relays applied: {}, flushed by timer: {} times",
        metrics.relays_applied, metrics.piggyback_timer_flushes
    );
    assert!(
        metrics.piggyback_timer_flushes > 0,
        "the flush-interval timer never fired on the threaded runtime"
    );

    // Even across real threads, the execution satisfies the paper's §3
    // requirements — including replica convergence, now that the final
    // states are inspectable after shutdown.
    record_final_digests_from(
        &log,
        procs
            .iter()
            .enumerate()
            .map(|(i, p)| (ProcId(i as u32), &**p)),
    );
    let violations = log.lock().check();
    println!(
        "history check across threads: {} violations",
        violations.len()
    );
    assert!(violations.is_empty());
}
