//! The same dB-tree processors on real OS threads.
//!
//! The protocol code is runtime-agnostic: `DbProc` implements
//! `simnet::Process`, so the exact same state machines that run under the
//! deterministic simulator also run on `simnet::threaded::Cluster`, where
//! each processor is a thread and channels are crossbeam queues. This
//! example bulk-builds a tree, spawns the cluster, and drives concurrent
//! inserts and searches from the outside.
//!
//! ```sh
//! cargo run -p dbtree --example threaded_cluster
//! ```

use std::time::{Duration, Instant};

use dbtree::{build_procs, BuildSpec, Intent, Msg, OpId, Outcome, TreeConfig};
use simnet::threaded::Cluster;
use simnet::ProcId;

fn main() {
    let n_procs = 4u32;
    let cfg = TreeConfig {
        // The threaded runtime drops timers, so piggybacking stays off; the
        // shared history log works fine across threads (it is mutex-guarded).
        piggyback: None,
        ..Default::default()
    };
    let spec = BuildSpec::new((0..2_000u64).map(|k| k * 3).collect(), n_procs, cfg);
    let (procs, log) = build_procs(&spec);

    println!("spawning {n_procs} dB-tree processors as OS threads...");
    let cluster = Cluster::spawn(procs);

    let t0 = Instant::now();
    let total_ops = 4_000u64;
    for i in 0..total_ops {
        let origin = ProcId((i % n_procs as u64) as u32);
        let msg = if i % 4 == 0 {
            Msg::Client {
                op: OpId(i),
                key: 6001 + i, // fresh keys: grows the right edge
                intent: Intent::Insert(i),
            }
        } else {
            Msg::Client {
                op: OpId(i),
                key: (i * 3) % 6000,
                intent: Intent::Search,
            }
        };
        cluster.inject(origin, msg);
    }

    let mut done = 0u64;
    let mut found = 0u64;
    while done < total_ops {
        match cluster.recv_output_timeout(Duration::from_secs(10)) {
            Some((_, Msg::Done(Outcome { found: f, .. }))) => {
                done += 1;
                if f.is_some() {
                    found += 1;
                }
            }
            Some(_) => {}
            None => panic!("cluster stalled"),
        }
    }
    let elapsed = t0.elapsed();
    println!(
        "{done} operations completed in {elapsed:?} ({:.0} ops/s); {found} lookups hit",
        done as f64 / elapsed.as_secs_f64()
    );

    // Client replies arrive before background restructuring (split
    // completions, relays) finishes — give the queues a moment to drain
    // before tearing the threads down. (The deterministic simulator detects
    // quiescence exactly; real threads need a grace period.)
    std::thread::sleep(Duration::from_millis(500));
    cluster.shutdown();

    // Even across real threads, the execution satisfies the paper's §3
    // requirements (the shared log recorded every action).
    let violations = log.lock().check();
    // Final digests aren't recorded in this mode (no global snapshot), so
    // the check covers the complete/ordered requirements and coverage.
    println!(
        "history check across threads: {} violations",
        violations.len()
    );
    assert!(violations.is_empty());
}
