//! An interactive shell over a simulated dB-tree deployment.
//!
//! Drive the cluster by hand: insert, search, delete, scan, migrate leaves,
//! and watch the protocol's message counters move. Useful for poking at the
//! lazy-update machinery interactively.
//!
//! ```sh
//! cargo run -p dbtree --example cli
//! dbtree> insert 42 420
//! dbtree> search 42
//! dbtree> scan 0 10
//! dbtree> stats
//! ```

use std::io::{self, BufRead, Write};

use dbtree::{balance, checker, BuildSpec, ClientOp, DbCluster, GlobalView, Intent, TreeConfig};
use simnet::{ProcId, SimConfig};

const HELP: &str = "commands:
  insert <key> <value>   insert/overwrite (from a rotating origin processor)
  search <key>           point lookup
  delete <key>           tombstone delete
  scan <from> <limit>    range scan across the leaf chain
  migrate                run the leaf balancer (plan + execute)
  tree                   per-level node/copy counts and utilization
  stats                  network message counters
  check                  run the full §3 + structural checker
  help                   this text
  quit";

fn main() {
    let n_procs = 4u32;
    let spec = BuildSpec::new(
        (0..64).map(|k| k * 16).collect(),
        n_procs,
        TreeConfig::default(),
    );
    let mut cluster = DbCluster::build(&spec, SimConfig::jittery(1, 2, 20));
    let mut origin = 0u32;
    let mut expected: std::collections::BTreeSet<u64> = (0..64).map(|k| k * 16).collect();

    println!("dB-tree on {n_procs} simulated processors. Type `help` for commands.");
    let stdin = io::stdin();
    loop {
        print!("dbtree> ");
        io::stdout().flush().ok();
        let Some(Ok(line)) = stdin.lock().lines().next() else {
            break;
        };
        let parts: Vec<&str> = line.split_whitespace().collect();
        origin = (origin + 1) % n_procs;
        let from = ProcId(origin);
        match parts.as_slice() {
            [] => {}
            ["quit" | "exit" | "q"] => break,
            ["help" | "h" | "?"] => println!("{HELP}"),
            ["insert", k, v] => match (k.parse(), v.parse()) {
                (Ok(key), Ok(value)) => {
                    cluster.submit(ClientOp {
                        origin: from,
                        key,
                        intent: Intent::Insert(value),
                    });
                    let r = cluster.run_to_quiescence();
                    expected.insert(key);
                    println!(
                        "ok (from {from}, {} hops, prev = {:?})",
                        r[0].outcome.hops, r[0].outcome.found
                    );
                }
                _ => println!("usage: insert <key> <value>"),
            },
            ["search", k] => match k.parse() {
                Ok(key) => {
                    cluster.submit(ClientOp {
                        origin: from,
                        key,
                        intent: Intent::Search,
                    });
                    let r = cluster.run_to_quiescence();
                    match r[0].outcome.found {
                        Some(v) => println!("{key} => {v} ({} hops)", r[0].outcome.hops),
                        None => println!("{key} not found"),
                    }
                }
                _ => println!("usage: search <key>"),
            },
            ["delete", k] => match k.parse() {
                Ok(key) => {
                    cluster.submit(ClientOp {
                        origin: from,
                        key,
                        intent: Intent::Delete,
                    });
                    let r = cluster.run_to_quiescence();
                    expected.remove(&key);
                    println!("deleted (prev = {:?})", r[0].outcome.found);
                }
                _ => println!("usage: delete <key>"),
            },
            ["scan", f, n] => match (f.parse(), n.parse()) {
                (Ok(from_key), Ok(limit)) => {
                    cluster.scan(from, from_key, limit);
                    cluster.run_to_quiescence();
                    for s in cluster.take_scans() {
                        println!("{} entries ({} hops):", s.items.len(), s.hops);
                        for (k, v) in s.items.iter().take(20) {
                            println!("  {k} => {v}");
                        }
                        if s.items.len() > 20 {
                            println!("  ... ({} more)", s.items.len() - 20);
                        }
                    }
                }
                _ => println!("usage: scan <from> <limit>"),
            },
            ["migrate"] => {
                let plan = balance::plan_rebalance(&cluster.sim, 1);
                if plan.is_empty() {
                    println!("already balanced: {:?}", balance::leaf_loads(&cluster.sim));
                } else {
                    for m in &plan {
                        cluster.migrate(m.leaf, m.from, m.to);
                    }
                    cluster.run_to_quiescence();
                    println!(
                        "moved {} leaves; loads now {:?}",
                        plan.len(),
                        balance::leaf_loads(&cluster.sim)
                    );
                }
            }
            ["tree"] => {
                let view = GlobalView::new(&cluster.sim);
                for (level, nodes) in view.nodes_per_level().iter().rev() {
                    let copies = view.copies_per_level()[level];
                    println!(
                        "level {level}: {nodes} nodes, {copies} copies, utilization {:.0}%",
                        view.utilization(*level) * 100.0
                    );
                }
            }
            ["stats"] => print!("{}", cluster.sim.stats()),
            ["check"] => {
                let violations = checker::check_all(&mut cluster, &expected);
                if violations.is_empty() {
                    println!("clean: converged, complete, ordered; all keys findable");
                } else {
                    for v in violations {
                        println!("VIOLATION: {v}");
                    }
                }
            }
            _ => println!("unknown command; try `help`"),
        }
    }
}
