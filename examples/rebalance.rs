//! Data balancing on a skewed workload (§4.2, [14]).
//!
//! Hotspot inserts pile leaves onto a few processors; the balancer plans
//! greedy leaf migrations and the lazy mobile-node protocol executes them
//! while search traffic keeps flowing. Prints the per-processor leaf loads
//! before and after, as a bar chart.
//!
//! ```sh
//! cargo run -p dbtree --example rebalance
//! ```

use dbtree::balance::{imbalance, leaf_loads, plan_rebalance};
use dbtree::{BuildSpec, ClientOp, DbCluster, Intent, Placement, TreeConfig};
use simnet::{ProcId, SimConfig};
use workload::{KeyDist, Mix, WorkloadGen};

fn bars(loads: &[usize]) {
    let max = loads.iter().copied().max().unwrap_or(1).max(1);
    for (i, &l) in loads.iter().enumerate() {
        let width = l * 50 / max;
        println!("  P{i:<2} {:>4} leaves  {}", l, "#".repeat(width));
    }
}

fn main() {
    let cfg = TreeConfig {
        placement: Placement::Uniform { copies: 1 },
        forwarding: true,
        fanout: 8,
        record_history: false,
        ..Default::default()
    };
    let spec = BuildSpec::new((0..400u64).map(|k| k * 10).collect(), 8, cfg);
    let mut cluster = DbCluster::build(&spec, SimConfig::jittery(5, 2, 25));

    // Hotspot inserts: 95% of traffic lands in 5% of the key space.
    let mut gen = WorkloadGen::new(
        KeyDist::Hotspot {
            n: 4000,
            hot_fraction: 0.05,
            hot_prob: 0.95,
        },
        Mix::INSERT_ONLY,
        8,
        5,
    );
    let ops: Vec<ClientOp> = gen
        .batch(2500)
        .iter()
        .map(|op| ClientOp {
            origin: ProcId(op.origin),
            key: op.key,
            intent: Intent::Insert(op.value),
        })
        .collect();
    cluster.run_closed_loop(&ops, 4);

    let before = leaf_loads(&cluster.sim);
    println!(
        "after a hotspot insert storm (imbalance {:.2}):",
        imbalance(&before)
    );
    bars(&before);

    let plan = plan_rebalance(&cluster.sim, 2);
    println!(
        "\nbalancer plans {} leaf migrations; executing...",
        plan.len()
    );
    for m in &plan {
        cluster.migrate(m.leaf, m.from, m.to);
    }
    // Searches keep flowing while leaves move.
    let mut gen = WorkloadGen::new(KeyDist::Uniform { n: 4000 }, Mix::SEARCH_ONLY, 8, 7);
    let searches: Vec<ClientOp> = gen
        .batch(500)
        .iter()
        .map(|op| ClientOp {
            origin: ProcId(op.origin),
            key: op.key,
            intent: Intent::Search,
        })
        .collect();
    let stats = cluster.run_closed_loop(&searches, 2);
    println!(
        "  {} searches completed during the migration wave (mean latency {:.1} ticks)",
        stats.records.len(),
        stats.mean_latency()
    );

    let after = leaf_loads(&cluster.sim);
    println!("\nafter balancing (imbalance {:.2}):", imbalance(&after));
    bars(&after);
}
