//! Quickstart: build a dB-tree over four simulated processors, run a few
//! operations, and inspect what the protocol did.
//!
//! ```sh
//! cargo run -p dbtree --example quickstart
//! ```

use dbtree::{BuildSpec, ClientOp, DbCluster, GlobalView, Intent, TreeConfig};
use simnet::{ProcId, SimConfig};

fn main() {
    // A dB-tree preloaded with 1000 keys, spread over 4 processors with the
    // paper's path-replication policy and the semisync lazy-update protocol.
    let keys: Vec<u64> = (0..1000).map(|k| k * 2).collect();
    let spec = BuildSpec::new(keys, 4, TreeConfig::default());
    let mut cluster = DbCluster::build(&spec, SimConfig::seeded(1));

    println!("built a dB-tree on {} processors:", cluster.n_procs());
    {
        let view = GlobalView::new(&cluster.sim);
        for (level, nodes) in view.nodes_per_level().iter().rev() {
            let copies = view.copies_per_level()[level];
            println!(
                "  level {level}: {nodes} nodes, {copies} copies ({:.1} copies/node)",
                copies as f64 / *nodes as f64
            );
        }
    }

    // Every processor can initiate operations — submit an insert at P2 and
    // a search for the same key at P0.
    cluster.submit(ClientOp {
        origin: ProcId(2),
        key: 501,
        intent: Intent::Insert(0xBEEF),
    });
    let records = cluster.run_to_quiescence();
    println!(
        "\ninsert of key 501 from P2: done in {} virtual ticks, {} node hops",
        records[0].latency(),
        records[0].outcome.hops
    );

    cluster.submit(ClientOp {
        origin: ProcId(0),
        key: 501,
        intent: Intent::Search,
    });
    let records = cluster.run_to_quiescence();
    println!(
        "search for key 501 from P0: found value {:#x} in {} hops",
        records[0].outcome.found.expect("the insert is visible"),
        records[0].outcome.hops
    );

    // The simulator counted every message by kind.
    println!("\nnetwork traffic:\n{}", cluster.sim.stats());

    // And the execution satisfied the paper's §3 correctness requirements.
    cluster.record_final_digests();
    let violations = cluster.log().lock().check();
    println!(
        "history check: {} violations — complete, compatible, ordered ✓",
        violations.len()
    );
}
