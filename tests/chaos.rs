//! Chaos suite: the §3 requirements must survive a hostile network.
//!
//! The paper's protocols assume exactly-once FIFO channels and reliable
//! processors (§4). Here those assumptions are deliberately broken — random
//! drops, duplicate deliveries, and processor crash/restart — and the
//! reliable-delivery session layer plus the §4.3 crash-recovery joins must
//! rebuild them: every acknowledged insert findable, all copies converged,
//! and the history log clean, on every seed.

use std::collections::BTreeSet;

use dbtree::{checker, BuildSpec, ClientOp, DbCluster, Intent, ProtocolKind, TreeConfig};
use proptest::prelude::*;
use simnet::{CrashEvent, FaultPlan, ProcId, SimConfig, SimTime, TraceEvent};

const N_PROCS: u32 = 4;

/// A jittery-latency config carrying the given fault plan.
fn faulty_cfg(seed: u64, faults: FaultPlan) -> SimConfig {
    SimConfig {
        faults,
        ..SimConfig::jittery(seed, 2, 20)
    }
}

/// Drive an insert storm through a faulty network and run the full checker
/// battery. With no crashes in the plan every operation must complete.
fn storm(cfg: TreeConfig, sim_cfg: SimConfig, n_ops: u64) {
    let preload: Vec<u64> = (0..60).map(|k| k * 50).collect();
    let spec = BuildSpec::new(preload.clone(), N_PROCS, cfg);
    let mut cluster = DbCluster::build(&spec, sim_cfg);

    let keys: Vec<u64> = (0..n_ops).map(|i| 7 * i + 1).collect();
    let ops: Vec<ClientOp> = keys
        .iter()
        .enumerate()
        .map(|(i, &key)| ClientOp {
            origin: ProcId(i as u32 % N_PROCS),
            key,
            intent: Intent::Insert(key + 1),
        })
        .collect();
    let stats = cluster.run_closed_loop(&ops, 3);
    assert_eq!(
        stats.records.len(),
        ops.len(),
        "every insert must be acknowledged despite the faults"
    );

    let faults = *cluster.sim.stats().faults();
    assert!(
        faults.dropped + faults.duplicated > 0,
        "the plan was supposed to actually inject faults: {faults:?}"
    );

    let mut expected: BTreeSet<u64> = preload.into_iter().collect();
    expected.extend(keys);
    let violations = checker::check_all(&mut cluster, &expected);
    assert!(violations.is_empty(), "{violations:?}");
}

fn chaos_matrix(cfg_of: impl Fn() -> TreeConfig) {
    for drop_prob in [0.05, 0.15] {
        for seed in 0..8u64 {
            let plan = FaultPlan::lossy(drop_prob).with_dup(0.10);
            storm(cfg_of(), faulty_cfg(seed, plan), 100);
        }
    }
}

#[test]
fn chaos_semisync() {
    chaos_matrix(TreeConfig::default);
}

#[test]
fn chaos_sync() {
    chaos_matrix(|| TreeConfig::with_protocol(ProtocolKind::Sync));
}

#[test]
fn chaos_available_copies() {
    chaos_matrix(|| TreeConfig::with_protocol(ProtocolKind::AvailableCopies));
}

#[test]
fn chaos_variable_copies() {
    chaos_matrix(|| TreeConfig {
        variable_copies: true,
        ..Default::default()
    });
}

/// Crash an interior-node replica in the middle of an insert storm (splits
/// included), restart it, and require it to rejoin every dropped copy via
/// the §4.3 join protocol and end bit-identical to its peers.
#[test]
fn crash_and_rejoin_mid_storm_converges() {
    for seed in 0..6u64 {
        let crashed = ProcId(2);
        let plan = FaultPlan::lossy(0.05)
            .with_dup(0.05)
            .with_crash(CrashEvent {
                proc: crashed,
                at: SimTime(800),
                restart_at: Some(SimTime(2500)),
            });
        let preload: Vec<u64> = (0..60).map(|k| k * 40).collect();
        let spec = BuildSpec::new(preload.clone(), N_PROCS, TreeConfig::default());
        let mut cluster = DbCluster::build(&spec, faulty_cfg(seed, plan));

        // Clients avoid the crashing processor (an injection into a down
        // processor is lost with the rest of its volatile queue); its leaves
        // still serve traffic routed to them, which is the interesting part.
        let origins = [ProcId(0), ProcId(1), ProcId(3)];
        let keys: Vec<u64> = (0..150u64).map(|i| 13 * i + 3).collect();
        let ops: Vec<ClientOp> = keys
            .iter()
            .enumerate()
            .map(|(i, &key)| ClientOp {
                origin: origins[i % origins.len()],
                key,
                intent: Intent::Insert(key + 1),
            })
            .collect();
        let stats = cluster.run_closed_loop(&ops, 3);
        assert_eq!(stats.records.len(), ops.len(), "seed {seed}");

        let faults = *cluster.sim.stats().faults();
        assert_eq!(faults.crashes, 1, "seed {seed}");
        assert_eq!(faults.restarts, 1, "seed {seed}");

        // The restarted processor went through recovery and re-acquired at
        // least one interior copy through the join protocol.
        let recovered = cluster
            .sim
            .procs()
            .find(|(pid, _)| *pid == crashed)
            .map(|(_, p)| p.metrics)
            .unwrap();
        assert_eq!(recovered.recoveries, 1, "seed {seed}");
        assert!(
            recovered.recovery_rejoins >= 1,
            "seed {seed}: the crashed processor held no interior replica?"
        );

        let mut expected: BTreeSet<u64> = preload.into_iter().collect();
        expected.extend(keys);
        let violations = checker::check_all(&mut cluster, &expected);
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
    }
}

/// The same crash/rejoin story under §4.3 variable copies, where the
/// recovered processor's joins race ordinary churn-driven joins.
#[test]
fn crash_recovery_under_variable_copies() {
    for seed in 0..4u64 {
        let plan = FaultPlan::lossy(0.05).with_crash(CrashEvent {
            proc: ProcId(1),
            at: SimTime(600),
            restart_at: Some(SimTime(2000)),
        });
        let cfg = TreeConfig {
            variable_copies: true,
            ..Default::default()
        };
        let preload: Vec<u64> = (0..80).map(|k| k * 30).collect();
        let spec = BuildSpec::new(preload.clone(), N_PROCS, cfg);
        let mut cluster = DbCluster::build(&spec, faulty_cfg(seed, plan));

        let origins = [ProcId(0), ProcId(2), ProcId(3)];
        let keys: Vec<u64> = (0..120u64).map(|i| 11 * i + 5).collect();
        let ops: Vec<ClientOp> = keys
            .iter()
            .enumerate()
            .map(|(i, &key)| ClientOp {
                origin: origins[i % origins.len()],
                key,
                intent: Intent::Insert(key + 1),
            })
            .collect();
        let stats = cluster.run_closed_loop(&ops, 3);
        assert_eq!(stats.records.len(), ops.len(), "seed {seed}");

        let mut expected: BTreeSet<u64> = preload.into_iter().collect();
        expected.extend(keys);
        let violations = checker::check_all(&mut cluster, &expected);
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
    }
}

/// Every injected fault must be *visible* in the causal trace, and the
/// trace must agree exactly with the fault RNG's statistics: each loss a
/// `drop/loss` entry, each duplication a `duplicate/dup` entry, each
/// crash-destroyed delivery a `drop/crash` entry — and session-layer
/// retransmissions must be distinguishable from first transmissions via the
/// `redelivery` flag.
#[test]
fn fault_trace_matches_injected_fault_stats() {
    let plan = FaultPlan::lossy(0.10)
        .with_dup(0.10)
        .with_crash(CrashEvent {
            proc: ProcId(2),
            at: SimTime(800),
            restart_at: Some(SimTime(2000)),
        });
    let mut sim_cfg = faulty_cfg(5, plan);
    sim_cfg.trace_capacity = 1 << 20; // retain the whole run
    let preload: Vec<u64> = (0..60).map(|k| k * 50).collect();
    let spec = BuildSpec::new(preload, N_PROCS, TreeConfig::default());
    let mut cluster = DbCluster::build(&spec, sim_cfg);

    let origins = [ProcId(0), ProcId(1), ProcId(3)]; // avoid the crasher
    let ops: Vec<ClientOp> = (0..100u64)
        .map(|i| ClientOp {
            origin: origins[i as usize % origins.len()],
            key: 7 * i + 1,
            intent: Intent::Insert(i),
        })
        .collect();
    let stats = cluster.run_closed_loop(&ops, 3);
    assert_eq!(stats.records.len(), ops.len());

    let faults = *cluster.sim.stats().faults();
    let trace = cluster.sim.trace();
    assert_eq!(trace.dropped(), 0, "capacity must hold the full run");

    let count = |ev: TraceEvent, flavor: &str| {
        trace.of_event(ev).filter(|e| e.detail == flavor).count() as u64
    };
    assert!(faults.dropped > 0 && faults.duplicated > 0, "{faults:?}");
    assert_eq!(count(TraceEvent::Drop, "loss"), faults.dropped);
    assert_eq!(count(TraceEvent::Duplicate, "dup"), faults.duplicated);
    assert_eq!(count(TraceEvent::Drop, "crash"), faults.crash_dropped);
    assert_eq!(
        trace.of_event(TraceEvent::Crash).count() as u64,
        faults.crashes
    );
    assert_eq!(
        trace.of_event(TraceEvent::Restart).count() as u64,
        faults.restarts
    );

    // Lost messages force the session layer to retransmit, and those
    // deliveries are marked — while ordinary traffic stays unmarked.
    assert!(
        trace
            .iter()
            .any(|e| e.event == TraceEvent::Deliver && e.redelivery),
        "a lossy run must contain visible redeliveries"
    );
    assert!(trace
        .iter()
        .any(|e| e.event == TraceEvent::Deliver && !e.redelivery));
}

/// Cancellation semantics pin: when a processor crashes, the in-flight
/// deliveries and timers addressed to its dead incarnation must be
/// *observed* exactly as they always were — a `drop/crash` trace entry at
/// each event's original fire time, and the same `FaultStats` — no matter
/// how the event queue implements the invalidation (the original lazy
/// epoch-scan at pop time, or eager cancellation at crash time). The
/// constants below were captured from the epoch-scan implementation; a
/// queue change that shifts a single drop, reorders the trace, or loses a
/// stat will fail this test.
#[test]
fn crash_invalidation_matches_lazy_skip_fingerprint() {
    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
    let plan = FaultPlan::lossy(0.10)
        .with_dup(0.10)
        .with_crash(CrashEvent {
            proc: ProcId(2),
            at: SimTime(500),
            restart_at: Some(SimTime(2200)),
        });
    let mut sim_cfg = faulty_cfg(7, plan);
    sim_cfg.trace_capacity = 1 << 20; // retain the whole run
    let preload: Vec<u64> = (0..60).map(|k| k * 50).collect();
    let spec = BuildSpec::new(preload, N_PROCS, TreeConfig::default());
    let mut cluster = DbCluster::build(&spec, sim_cfg);

    let origins = [ProcId(0), ProcId(1), ProcId(3)]; // avoid the crasher
    let ops: Vec<ClientOp> = (0..120u64)
        .map(|i| ClientOp {
            origin: origins[i as usize % origins.len()],
            key: 7 * i + 1,
            intent: Intent::Insert(i),
        })
        .collect();
    let stats = cluster.run_closed_loop(&ops, 8);
    assert_eq!(stats.records.len(), ops.len());

    let faults = *cluster.sim.stats().faults();
    assert!(
        faults.crash_dropped > 0,
        "the crash must actually invalidate in-flight deliveries: {faults:?}"
    );
    assert_eq!(
        (
            faults.dropped,
            faults.duplicated,
            faults.partition_dropped,
            faults.crash_dropped,
            faults.timer_dropped,
            faults.crashes,
            faults.restarts,
        ),
        (51, 41, 0, 12, 0, 1, 1),
        "FaultStats drifted from the pinned lazy-skip run"
    );
    assert_eq!(cluster.sim.events_delivered(), 966);
    // Hash the retained entries, not the Trace struct's Debug output: the
    // pin is about what was observed, not the ring's bookkeeping fields.
    let entries: Vec<_> = cluster.sim.trace().iter().collect();
    let trace_hash = fnv1a(format!("{entries:?}").as_bytes());
    assert_eq!(
        trace_hash, 0x2F38A0EEA9751E57,
        "trace (drop order/times included) drifted from the pinned run"
    );
}

/// Determinism regression: an identical `SimConfig` — fault plan included —
/// must replay the identical execution: same delivery trace, same op
/// timings, same final tree, for multiple protocols.
#[test]
fn fault_plans_replay_deterministically() {
    for protocol in [ProtocolKind::SemiSync, ProtocolKind::Sync] {
        let fingerprint = || {
            let plan = FaultPlan::lossy(0.10)
                .with_dup(0.05)
                .with_crash(CrashEvent {
                    proc: ProcId(3),
                    at: SimTime(500),
                    restart_at: Some(SimTime(1500)),
                });
            let mut sim_cfg = faulty_cfg(99, plan);
            sim_cfg.trace_capacity = 4096;
            let spec = BuildSpec::new(
                (0..50).map(|k| k * 20).collect(),
                N_PROCS,
                TreeConfig::with_protocol(protocol),
            );
            let mut cluster = DbCluster::build(&spec, sim_cfg);
            let ops: Vec<ClientOp> = (0..80u64)
                .map(|i| ClientOp {
                    origin: ProcId((i % 3) as u32), // not the crashing proc
                    key: 9 * i + 2,
                    intent: Intent::Insert(i),
                })
                .collect();
            let stats = cluster.run_closed_loop(&ops, 2);
            let timings: Vec<(u64, u64, u64)> = stats
                .records
                .iter()
                .map(|r| (r.op.key, r.submitted.ticks(), r.completed.ticks()))
                .collect();
            let mut digests: Vec<(u64, u32, u64)> = cluster
                .sim
                .procs()
                .flat_map(|(pid, p)| {
                    p.store
                        .iter()
                        .map(move |c| (c.id.raw(), pid.0, c.digest()))
                        .collect::<Vec<_>>()
                })
                .collect();
            digests.sort_unstable();
            (
                cluster.sim.events_delivered(),
                cluster.sim.stats().total_messages(),
                *cluster.sim.stats().faults(),
                format!("{:?}", cluster.sim.trace()),
                timings,
                digests,
            )
        };
        assert_eq!(fingerprint(), fingerprint(), "{protocol:?}");
    }
}

// ---------------------------------------------------------------------------
// Session-layer edge cases, driven below the tree protocols: a bare streaming
// process under the session wrapper, so the go-back-N window, the duplicate
// suppression, and the reorder buffer are observable directly.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum StreamMsg {
    Num(u32),
}

impl simnet::Payload for StreamMsg {
    fn kind(&self) -> &'static str {
        "num"
    }
}

/// P0 streams `count` numbered messages to P1; P1 records arrivals in order.
struct Streamer {
    count: u32,
    seen: Vec<u32>,
}

impl simnet::Process for Streamer {
    type Msg = StreamMsg;
    fn on_start(&mut self, ctx: &mut simnet::Context<'_, StreamMsg>) {
        if ctx.me() == ProcId(0) {
            for n in 0..self.count {
                ctx.send(ProcId(1), StreamMsg::Num(n));
            }
        }
    }
    fn on_message(&mut self, _ctx: &mut simnet::Context<'_, StreamMsg>, _f: ProcId, m: StreamMsg) {
        let StreamMsg::Num(n) = m;
        self.seen.push(n);
    }
}

fn stream_pair(count: u32, session: simnet::SessionConfig) -> Vec<simnet::SessionProc<Streamer>> {
    (0..2)
        .map(|_| {
            simnet::SessionProc::new(
                Streamer {
                    count,
                    seen: vec![],
                },
                session,
            )
        })
        .collect()
}

/// Go-back-N after a duplicated ack: with every message duplicated —
/// cumulative acks included — the sender keeps receiving stale acks
/// (`upto` values it has already advanced past). A stale ack must be a
/// no-op: no double-pop of the outbox, no spurious abort, and the
/// retransmission rounds triggered by the concurrent losses must resend
/// exactly the still-unacknowledged window, so the stream survives
/// exactly-once and in order.
#[test]
fn goback_n_survives_duplicated_acks() {
    let mut total_retx = 0;
    let mut total_dup_acks = 0;
    for seed in 0..6u64 {
        let mut cfg = SimConfig::jittery(seed, 2, 25);
        cfg.faults = FaultPlan::lossy(0.25).with_dup(1.0);
        let mut sim =
            simnet::Simulation::new(cfg, stream_pair(80, simnet::SessionConfig::reliable()));
        sim.run();

        let p1 = sim.proc(ProcId(1));
        assert_eq!(
            p1.inner().seen,
            (0..80).collect::<Vec<_>>(),
            "seed {seed}: stream must survive dup'd acks exactly-once in order"
        );
        let p0 = sim.proc(ProcId(0));
        assert_eq!(
            p0.session_stats().aborted,
            0,
            "seed {seed}: stale acks must not abort"
        );
        assert_eq!(p0.unacked(), 0, "seed {seed}: window must fully drain");
        assert!(
            p1.session_stats().dup_suppressed > 0,
            "seed {seed}: dups reached the receiver"
        );
        total_retx += p0.session_stats().retransmissions;
        // Every ack is sent once and duplicated by the plan; any ack count
        // above the distinct-ack number implies stale acks were processed.
        total_dup_acks += sim.stats().faults().duplicated;
    }
    assert!(total_retx > 0, "losses must trigger go-back-N rounds");
    assert!(
        total_dup_acks > 0,
        "the plan was supposed to duplicate traffic"
    );
}

/// Reorder buffer vs a crash-restart racing retransmissions: drops open
/// gaps, so later sequences sit in the receiver's out-of-order buffer;
/// the crash destroys that buffer (it is volatile) while the delivery
/// counter survives (it is part of the stable queue manager, §4.3-style).
/// Retransmissions that were already in flight when the processor went
/// down then race the restart. Required outcome: sequences consumed
/// before the crash are suppressed as duplicates, sequences that only
/// ever reached the buffer are retransmitted and delivered — end to end
/// exactly-once, in order, despite the buffer loss.
#[test]
fn reorder_buffer_survives_crash_restart_race() {
    let mut total_buffered = 0;
    let mut total_suppressed = 0;
    for seed in 0..6u64 {
        let mut cfg = SimConfig::jittery(seed, 2, 25);
        cfg.faults = FaultPlan::lossy(0.25).with_crash(CrashEvent {
            proc: ProcId(1),
            at: SimTime(30),
            restart_at: Some(SimTime(300)),
        });
        let mut sim =
            simnet::Simulation::new(cfg, stream_pair(80, simnet::SessionConfig::reliable()));
        sim.run();

        assert_eq!(sim.stats().faults().crashes, 1, "seed {seed}");
        assert_eq!(sim.stats().faults().restarts, 1, "seed {seed}");
        let p1 = sim.proc(ProcId(1));
        assert_eq!(
            p1.inner().seen,
            (0..80).collect::<Vec<_>>(),
            "seed {seed}: reorder buffer loss must be repaired by retransmission"
        );
        assert!(
            sim.proc(ProcId(0)).session_stats().retransmissions > 0,
            "seed {seed}: the race requires actual retransmissions"
        );
        total_buffered += p1.session_stats().out_of_order;
        total_suppressed += p1.session_stats().dup_suppressed;
    }
    // Across the seed matrix both halves of the race must actually occur:
    // gaps that buffered out-of-order arrivals, and post-restart duplicate
    // deliveries that the stable counter suppressed.
    assert!(
        total_buffered > 0,
        "no arrival was ever buffered out of order"
    );
    assert!(
        total_suppressed > 0,
        "no post-crash duplicate was ever suppressed"
    );
}

fn protocol_strategy() -> impl Strategy<Value = ProtocolKind> {
    prop_oneof![
        Just(ProtocolKind::SemiSync),
        Just(ProtocolKind::Sync),
        Just(ProtocolKind::AvailableCopies),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 100,
    })]

    /// Any protocol, any seed, any drop/duplication rate: the session layer
    /// restores exactly-once FIFO and every §3 requirement holds.
    #[test]
    fn lossy_runs_satisfy_the_requirements(
        protocol in protocol_strategy(),
        seed in 0u64..1_000_000,
        drop_bp in 100u64..2500,   // basis points: 1%..25%
        dup_bp in 0u64..2000,      // basis points: 0%..20%
    ) {
        let cfg = TreeConfig::with_protocol(protocol);
        let plan = FaultPlan::lossy(drop_bp as f64 / 10_000.0).with_dup(dup_bp as f64 / 10_000.0);
        let preload: Vec<u64> = (0..40).map(|k| k * 50).collect();
        let spec = BuildSpec::new(preload.clone(), N_PROCS, cfg);
        let mut cluster = DbCluster::build(&spec, faulty_cfg(seed, plan));

        let keys: Vec<u64> = (0..50u64).map(|i| 17 * i + 4).collect();
        let ops: Vec<ClientOp> = keys
            .iter()
            .enumerate()
            .map(|(i, &key)| ClientOp {
                origin: ProcId(i as u32 % N_PROCS),
                key,
                intent: Intent::Insert(key),
            })
            .collect();
        let stats = cluster.run_closed_loop(&ops, 3);
        prop_assert_eq!(stats.records.len(), ops.len(), "every op completes");

        let mut expected: BTreeSet<u64> = preload.into_iter().collect();
        expected.extend(keys);
        let violations = checker::check_all(&mut cluster, &expected);
        prop_assert!(violations.is_empty(), "{:?}", violations);
    }
}
