//! Runtime equivalence: the same workload, driven through the same
//! `DbCluster` facade, must produce the same final tree on the
//! deterministic simulator and on real OS threads.
//!
//! Thread scheduling is nondeterministic, so the comparison is over
//! schedule-independent facts: every op inserts a *distinct fresh* key with
//! a value derived from the key, so whatever order the runtimes interleave
//! the operations in, the final key→value contents are fixed. Each run must
//! (a) acknowledge every submitted operation, (b) end with exactly the
//! expected contents findable by root navigation, and (c) pass the §3
//! history check — on both runtimes.

use std::collections::BTreeMap;

use dbtree::{
    record_final_digests_from, BuildSpec, DbCluster, DbProc, GlobalView, ProtocolKind,
    ThreadedDbCluster, TreeConfig,
};
use simnet::{ProcId, SessionProc, SimConfig};
// The workload and the seed matrix are shared with the trace, dhash, and
// explorer perturbed-schedule suites — see `testkit` for the freshness
// argument the equivalence comparison rests on.
use testkit::{blink_fresh_workload as workload, EQ_N_PROCS as N_PROCS, EQ_SEEDS};

/// Assert facts (a)–(c) over a finished run's records and final states.
fn assert_run(
    label: &str,
    n_ops: usize,
    n_records: usize,
    procs: Vec<(ProcId, &DbProc)>,
    log: &std::sync::Arc<parking_lot::Mutex<history::HistoryLog>>,
    expected: &BTreeMap<u64, u64>,
) {
    assert_eq!(n_records, n_ops, "{label}: operations lost acknowledgement");
    let view = GlobalView::from_procs(procs.iter().copied());
    for (&k, &v) in expected {
        assert_eq!(
            view.find(k),
            Some(v),
            "{label}: key {k} missing or wrong in final tree"
        );
    }
    record_final_digests_from(log, procs);
    let violations = log.lock().check();
    assert!(
        violations.is_empty(),
        "{label}: history violations: {violations:?}"
    );
}

fn check_equivalence(cfg: TreeConfig, n_inserts: u64) {
    for seed in EQ_SEEDS {
        let (preload, ops, expected) = workload(seed, n_inserts);
        let spec = BuildSpec::new(preload, N_PROCS, cfg.clone());

        // Simulator run (jittery service times: adversarial interleavings).
        let mut sim = DbCluster::build(&spec, SimConfig::jittery(seed, 2, 20));
        let stats = sim.run_closed_loop(&ops, 4);
        let log = sim.log();
        let procs: Vec<(ProcId, &DbProc)> = sim.sim.procs().map(|(pid, p)| (pid, &**p)).collect();
        assert_run(
            &format!("sim seed {seed} ({:?})", cfg.protocol),
            ops.len(),
            stats.records.len(),
            procs,
            &log,
            &expected,
        );

        // Threaded run: same processes, same driver, real interleavings.
        let mut thr = ThreadedDbCluster::build_threaded(&spec);
        let stats = thr.run_closed_loop(&ops, 4);
        let log = thr.log();
        let final_procs: Vec<SessionProc<DbProc>> = thr.into_procs();
        let procs: Vec<(ProcId, &DbProc)> = final_procs
            .iter()
            .enumerate()
            .map(|(i, p)| (ProcId(i as u32), &**p))
            .collect();
        assert_run(
            &format!("threaded seed {seed} ({:?})", cfg.protocol),
            ops.len(),
            stats.records.len(),
            procs,
            &log,
            &expected,
        );
    }
}

#[test]
fn semisync_equivalent_across_runtimes() {
    check_equivalence(TreeConfig::fixed_copies(ProtocolKind::SemiSync, 3), 60);
}

#[test]
fn sync_equivalent_across_runtimes() {
    check_equivalence(TreeConfig::fixed_copies(ProtocolKind::Sync, 3), 60);
}

#[test]
fn available_copies_equivalent_across_runtimes() {
    check_equivalence(
        TreeConfig::fixed_copies(ProtocolKind::AvailableCopies, 3),
        60,
    );
}

/// Naive drops inserts that race a split (Fig 4) — *which* inserts depends
/// on the schedule, so equivalence only holds on a split-free workload:
/// with fanout 1024 nothing splits and Naive behaves like the others.
#[test]
fn naive_equivalent_across_runtimes_without_splits() {
    let cfg = TreeConfig {
        fanout: 1024,
        ..TreeConfig::fixed_copies(ProtocolKind::Naive, 3)
    };
    check_equivalence(cfg, 60);
}
