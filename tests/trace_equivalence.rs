//! Trace equivalence across runtimes: the same sequential workload must
//! yield the same *causal hop-chain* per operation on the deterministic
//! simulator and on real OS threads — reconstructed from each runtime's
//! JSONL trace export, so the test also proves an injected operation is
//! reconstructible end-to-end from the export alone.
//!
//! Operations are driven one at a time to quiescence, so the message flow
//! is schedule-independent (the protocol draws no randomness): both
//! substrates must emit, per span, the same multiset of
//! `(event, kind, from, to)` records. Times, waits, and interleavings are
//! substrate-specific and deliberately excluded.

use std::collections::BTreeMap;

use dbtree::{DbCluster, ThreadedDbCluster};
use simnet::{ObsConfig, SessionConfig, SimConfig};
// Deployment and burst are shared with the explorer's perturbed-schedule
// suite via `testkit`, so both suites reconstruct the very same operations.
use testkit::{split_burst_ops as ops, split_burst_spec as spec, TRACE_CAP, TRACE_SEED};

/// Pull one JSON field's raw value out of a trace line (the export is
/// hand-rolled, so the consumer side is too — no serde in this repo).
fn field<'a>(line: &'a str, name: &str) -> &'a str {
    let tag = format!("\"{name}\":");
    let start = line.find(&tag).expect("field present") + tag.len();
    let rest = &line[start..];
    if let Some(r) = rest.strip_prefix('"') {
        &r[..r.find('"').expect("closing quote")]
    } else {
        let end = rest.find([',', '}']).expect("value terminator");
        &rest[..end]
    }
}

/// Reconstruct each operation's hop-chain from the JSONL export: span →
/// sorted multiset of `(event, kind, from, to)`. Timer entries are
/// substrate-paced and carry no span; they never appear here.
fn chains(jsonl: &str) -> BTreeMap<i64, Vec<(String, String, i64, i64)>> {
    let mut map: BTreeMap<i64, Vec<(String, String, i64, i64)>> = BTreeMap::new();
    for line in jsonl.lines() {
        let span = field(line, "span");
        if span == "null" {
            continue;
        }
        map.entry(span.parse().expect("span is an integer"))
            .or_default()
            .push((
                field(line, "event").to_string(),
                field(line, "kind").to_string(),
                field(line, "from").parse().expect("from is an integer"),
                field(line, "to").parse().expect("to is an integer"),
            ));
    }
    for chain in map.values_mut() {
        chain.sort_unstable();
    }
    map
}

fn drive<R>(cluster: &mut DbCluster<R>) -> String
where
    R: simnet::Runtime<Proc = simnet::SessionProc<dbtree::DbProc>>,
{
    for op in ops() {
        cluster.submit(op);
        cluster.run_to_quiescence();
    }
    let obs = cluster.take_obs();
    assert_eq!(obs.trace.dropped(), 0, "capacity must hold the run");
    obs.trace.to_jsonl()
}

#[test]
fn hop_chains_identical_across_runtimes() {
    let mut sim_cfg = SimConfig::seeded(TRACE_SEED);
    sim_cfg.trace_capacity = TRACE_CAP;
    let mut sim = DbCluster::build(&spec(), sim_cfg);
    let sim_chains = chains(&drive(&mut sim));

    let mut thr = ThreadedDbCluster::build_threaded_with_obs(
        &spec(),
        SessionConfig::default(),
        ObsConfig::traced(TRACE_CAP),
    );
    let thr_chains = chains(&drive(&mut thr));

    assert_eq!(
        sim_chains.keys().collect::<Vec<_>>(),
        thr_chains.keys().collect::<Vec<_>>(),
        "both runtimes traced the same operations"
    );
    for (span, sim_chain) in &sim_chains {
        assert_eq!(
            sim_chain, &thr_chains[span],
            "operation {span}: hop-chains diverge across runtimes"
        );
    }

    // The chains are not vacuous: every op begins with its injected client
    // delivery and ends with a reply leaving the system...
    for (span, chain) in &sim_chains {
        assert!(
            chain
                .iter()
                .any(|(ev, kind, from, _)| ev == "deliver" && kind == "client" && *from == -1),
            "op {span}: injected client delivery missing from the chain"
        );
        assert!(
            chain.iter().any(|(ev, kind, _, to)| ev == "output"
                && (kind == "done" || kind == "scan.result")
                && *to == -1),
            "op {span}: completion output missing from the chain"
        );
    }
    // ...and the split cascade is causally attributed to the insert that
    // triggered it, even though split payloads never name an operation.
    assert!(
        sim_chains.values().any(|chain| chain
            .iter()
            .any(|(_, kind, _, _)| kind.starts_with("split."))),
        "no span inherited the split it caused"
    );
    assert!(
        sim_chains
            .values()
            .any(|chain| chain.iter().any(|(_, kind, _, _)| kind == "insert.relay")),
        "no span carried its relays"
    );
}
