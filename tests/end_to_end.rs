//! Cross-crate integration: the distributed dB-tree checked against a
//! sequential oracle, across every protocol and placement.
//!
//! The oracle is the `blink` crate's sequential B-link tree (and a plain
//! `BTreeMap`): after the distributed run quiesces, every key the oracle
//! holds must be findable in the dB-tree with the same value, and scans of
//! the leaf chain must produce the oracle's key order.

use std::collections::BTreeMap;

use blink::BLinkTree;
use dbtree::{
    checker, BuildSpec, ClientOp, DbCluster, Entry, GlobalView, Intent, Placement, ProtocolKind,
    TreeConfig,
};
use simnet::{ProcId, SimConfig};
use workload::{KeyDist, Mix, WorkloadGen};

fn all_protocol_configs() -> Vec<TreeConfig> {
    vec![
        TreeConfig::default(),
        TreeConfig::fixed_copies(ProtocolKind::SemiSync, 3),
        TreeConfig::fixed_copies(ProtocolKind::Sync, 3),
        TreeConfig::fixed_copies(ProtocolKind::AvailableCopies, 3),
        TreeConfig {
            piggyback: Some(dbtree::PiggybackCfg::default()),
            ..TreeConfig::fixed_copies(ProtocolKind::SemiSync, 4)
        },
        TreeConfig {
            placement: Placement::Uniform { copies: 1 },
            ..Default::default()
        },
    ]
}

#[test]
fn dbtree_agrees_with_sequential_oracle() {
    for (ci, cfg) in all_protocol_configs().into_iter().enumerate() {
        let preload: Vec<u64> = (0..150).map(|k| k * 7).collect();
        let spec = BuildSpec::new(preload.clone(), 4, cfg.clone());
        let mut cluster = DbCluster::build(&spec, SimConfig::jittery(ci as u64, 2, 20));

        // Oracle state.
        let mut oracle: BTreeMap<u64, u64> = preload.iter().map(|&k| (k, k)).collect();
        let mut blink_oracle = BLinkTree::new(cfg.fanout);
        for &k in &preload {
            blink_oracle.insert(k, k);
        }

        // Insert phase (values distinct from keys to catch mixups).
        let mut gen = WorkloadGen::new(
            KeyDist::Uniform { n: 3000 },
            Mix::INSERT_ONLY,
            4,
            99 + ci as u64,
        );
        let ops: Vec<ClientOp> = gen
            .batch(400)
            .iter()
            .map(|op| {
                oracle.insert(op.key, op.value);
                blink_oracle.insert(op.key, op.value);
                ClientOp {
                    origin: ProcId(op.origin),
                    key: op.key,
                    intent: Intent::Insert(op.value),
                }
            })
            .collect();
        cluster.run_closed_loop(&ops, 4);

        // NOTE: concurrent inserts to the same key may overwrite each other
        // in either order; restrict the value check to keys written once.
        let mut write_counts: BTreeMap<u64, usize> = BTreeMap::new();
        for op in &ops {
            *write_counts.entry(op.key).or_default() += 1;
        }

        let view = GlobalView::new(&cluster.sim);
        for (&k, &v) in &oracle {
            let got = view.find(k);
            assert!(
                got.is_some(),
                "config {ci}: key {k} lost (protocol {:?})",
                cfg.protocol
            );
            if write_counts.get(&k).copied().unwrap_or(0) <= 1 {
                assert_eq!(got, Some(v), "config {ci}: key {k} has wrong value");
            }
        }

        // Leaf-chain order agrees with the sequential oracle's scan.
        let mut chain_keys: Vec<u64> = Vec::new();
        {
            let mut leaves: Vec<_> = view
                .copies
                .values()
                .filter_map(|v| v.first().map(|(_, c)| *c))
                .filter(|c| c.is_leaf())
                .collect();
            leaves.sort_by_key(|c| c.range.low);
            for leaf in leaves {
                chain_keys.extend(leaf.entries.iter().filter_map(|(k, e)| match e {
                    Entry::Val { .. } => Some(*k),
                    _ => None,
                }));
            }
        }
        let oracle_keys: Vec<u64> = blink_oracle
            .range_scan(0, None)
            .iter()
            .map(|e| e.0)
            .collect();
        assert_eq!(
            chain_keys, oracle_keys,
            "config {ci}: leaf chain disagrees with sequential B-link scan"
        );

        // And the full checker battery.
        let expected = oracle.keys().copied().collect();
        let violations = checker::check_all(&mut cluster, &expected);
        assert!(violations.is_empty(), "config {ci}: {violations:?}");
    }
}

#[test]
fn searches_linearize_with_completed_inserts() {
    // Any search that *starts* after an insert's reply was received must see
    // it (the read-your-writes the protocol gives clients).
    let cfg = TreeConfig::default();
    let spec = BuildSpec::new((0..100).map(|k| k * 9).collect(), 4, cfg);
    let mut cluster = DbCluster::build(&spec, SimConfig::jittery(3, 2, 25));

    for round in 0..50u64 {
        let key = 100_000 + round;
        cluster.submit(ClientOp {
            origin: ProcId((round % 4) as u32),
            key,
            intent: Intent::Insert(round),
        });
        let recs = cluster.run_to_quiescence();
        assert!(recs.iter().any(|r| r.op.key == key));
        // Search from a different processor, after the ack.
        cluster.submit(ClientOp {
            origin: ProcId(((round + 2) % 4) as u32),
            key,
            intent: Intent::Search,
        });
        let recs = cluster.run_to_quiescence();
        let found = recs
            .iter()
            .find(|r| matches!(r.op.intent, Intent::Search))
            .expect("search completed");
        assert_eq!(found.outcome.found, Some(round), "round {round}");
    }
}

#[test]
fn workload_trace_replay_is_reproducible() {
    // The workload crate's trace + the simulator's determinism compose:
    // replaying the same trace yields the identical execution.
    let mut gen = WorkloadGen::new(
        KeyDist::Uniform { n: 500 },
        Mix {
            search_fraction: 0.4,
            ..Mix::INSERT_ONLY
        },
        3,
        8,
    );
    let trace = workload::Trace::new("replay-test", gen.batch(300));

    let run = |trace: &workload::Trace| {
        let spec = BuildSpec::new((0..50).map(|k| k * 11).collect(), 3, TreeConfig::default());
        let mut cluster = DbCluster::build(&spec, SimConfig::seeded(21));
        let ops: Vec<ClientOp> = trace
            .ops
            .iter()
            .map(|op| ClientOp {
                origin: ProcId(op.origin),
                key: op.key,
                intent: match op.kind {
                    workload::OpKind::Search => Intent::Search,
                    workload::OpKind::Insert => Intent::Insert(op.value),
                    workload::OpKind::Delete => Intent::Delete,
                    workload::OpKind::Scan => unreachable!("point-op mix"),
                },
            })
            .collect();
        let stats = cluster.run_closed_loop(&ops, 2);
        (
            stats.makespan,
            stats.records.len(),
            cluster.sim.stats().total_messages(),
            cluster.sim.events_delivered(),
        )
    };
    assert_eq!(run(&trace), run(&trace));
}
