//! Property-based tests over the whole stack: random workloads, random
//! schedules (seeds), random tree shapes — the §3 requirements and the
//! structural invariants must hold for every protocol, always.

use std::collections::BTreeSet;

use dbtree::{
    checker, BuildSpec, ClientOp, DbCluster, Intent, Placement, ProtocolKind, TreeConfig,
};
use proptest::prelude::*;
use simnet::{ProcId, SimConfig};

fn protocol_strategy() -> impl Strategy<Value = ProtocolKind> {
    prop_oneof![
        Just(ProtocolKind::SemiSync),
        Just(ProtocolKind::Sync),
        Just(ProtocolKind::AvailableCopies),
    ]
}

fn placement_strategy() -> impl Strategy<Value = Placement> {
    prop_oneof![
        Just(Placement::PathReplication),
        (1usize..4).prop_map(|copies| Placement::Uniform { copies }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        max_shrink_iters: 200,
    })]

    /// Whatever the protocol, placement, fanout, schedule, and operation
    /// stream: every acknowledged insert is findable, all copies converge,
    /// the leaf chain tiles the key space, and the history log is clean.
    #[test]
    fn any_run_satisfies_the_section3_requirements(
        protocol in protocol_strategy(),
        placement in placement_strategy(),
        fanout in 4usize..12,
        seed in 0u64..1_000_000,
        n_procs in 2u32..6,
        keys in proptest::collection::vec(0u64..2_000, 20..120),
    ) {
        let cfg = TreeConfig {
            protocol,
            placement,
            fanout,
            ..Default::default()
        };
        let preload: Vec<u64> = (0..40).map(|k| k * 50).collect();
        let spec = BuildSpec::new(preload.clone(), n_procs, cfg);
        let mut cluster = DbCluster::build(&spec, SimConfig::jittery(seed, 1, 30));

        let ops: Vec<ClientOp> = keys
            .iter()
            .enumerate()
            .map(|(i, &key)| ClientOp {
                origin: ProcId(i as u32 % n_procs),
                key,
                intent: Intent::Insert(key + 1),
            })
            .collect();
        let stats = cluster.run_closed_loop(&ops, 3);
        prop_assert_eq!(stats.records.len(), ops.len(), "every op completes");

        let mut expected: BTreeSet<u64> = preload.into_iter().collect();
        expected.extend(keys.iter().copied());
        let violations = checker::check_all(&mut cluster, &expected);
        prop_assert!(violations.is_empty(), "{:?}", violations);
    }

    /// Migrations at arbitrary points never lose data (mobile nodes, §4.2),
    /// with or without forwarding addresses.
    #[test]
    fn migrations_never_lose_data(
        seed in 0u64..1_000_000,
        forwarding in any::<bool>(),
        migrate_points in proptest::collection::vec((0usize..60, 0u32..4), 1..8),
        keys in proptest::collection::vec(0u64..3_000, 30..60),
    ) {
        let cfg = TreeConfig {
            placement: Placement::Uniform { copies: 1 },
            forwarding,
            ..Default::default()
        };
        let preload: Vec<u64> = (0..60).map(|k| k * 40).collect();
        let spec = BuildSpec::new(preload.clone(), 4, cfg);
        let mut cluster = DbCluster::build(&spec, SimConfig::jittery(seed, 1, 25));

        for (i, &key) in keys.iter().enumerate() {
            cluster.submit(ClientOp {
                origin: ProcId(i as u32 % 4),
                key,
                intent: Intent::Insert(key),
            });
            for &(point, dest) in &migrate_points {
                if point == i {
                    // Pick a deterministic leaf to shove around.
                    let leaf = cluster.leaves().into_iter().min_by_key(|(id, _)| *id);
                    if let Some((leaf, owner)) = leaf {
                        cluster.migrate(leaf, owner, ProcId(dest));
                    }
                }
            }
            // Interleave some progress.
            for _ in 0..10 {
                if !cluster.sim.step() {
                    break;
                }
            }
        }
        cluster.run_to_quiescence();

        let mut expected: BTreeSet<u64> = preload.into_iter().collect();
        expected.extend(keys.iter().copied());
        let violations = checker::check_all(&mut cluster, &expected);
        prop_assert!(violations.is_empty(), "{:?}", violations);
    }

    /// §4.3 variable copies: joins/unjoins under churn keep the dB-tree
    /// path property and all §3 requirements.
    #[test]
    fn variable_copies_keep_the_path_property(
        seed in 0u64..1_000_000,
        churn in 2usize..10,
        keys in proptest::collection::vec(0u64..3_000, 20..50),
    ) {
        let cfg = TreeConfig {
            variable_copies: true,
            ..Default::default()
        };
        let preload: Vec<u64> = (0..80).map(|k| k * 30).collect();
        let spec = BuildSpec::new(preload.clone(), 4, cfg);
        let mut cluster = DbCluster::build(&spec, SimConfig::jittery(seed, 1, 25));

        for (i, &key) in keys.iter().enumerate() {
            cluster.submit(ClientOp {
                origin: ProcId(i as u32 % 4),
                key,
                intent: Intent::Insert(key),
            });
            if i % churn == churn - 1 {
                let leaf = cluster
                    .leaves()
                    .into_iter()
                    .min_by_key(|(id, _)| id.raw().wrapping_mul(seed | 1));
                if let Some((leaf, owner)) = leaf {
                    let dest = ProcId((owner.0 + 1 + (seed % 3) as u32) % 4);
                    cluster.migrate(leaf, owner, dest);
                }
            }
            for _ in 0..10 {
                if !cluster.sim.step() {
                    break;
                }
            }
        }
        cluster.run_to_quiescence();

        let mut expected: BTreeSet<u64> = preload.into_iter().collect();
        expected.extend(keys.iter().copied());
        let violations = checker::check_all(&mut cluster, &expected);
        prop_assert!(violations.is_empty(), "{:?}", violations);
        let path = checker::check_path_property(&cluster.sim);
        prop_assert!(path.is_empty(), "{:?}", path);
    }
}
